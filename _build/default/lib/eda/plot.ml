(* The plotter tool: renders waveforms as ASCII timing diagrams -- the
   performance-plot entity of Fig. 1. *)

type t = {
  title : string;
  rendering : string;
  nets_plotted : string list;
}

let glyph = function
  | Logic.V0 -> '_'
  | Logic.V1 -> '#'
  | Logic.VX -> '?'

let render ?(width = 64) ~title (waveform : Waveform.t) nets =
  let end_time = max 1 (Waveform.end_time_ps waveform) in
  let step = max 1 (end_time / width) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "=== %s (%d ps, %d ps/col) ===\n" title end_time step);
  let name_width =
    List.fold_left (fun m n -> max m (String.length n)) 4 nets
  in
  List.iter
    (fun net ->
      let samples = Waveform.sample waveform net ~step_ps:step in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |" name_width net);
      List.iter (fun v -> Buffer.add_char buf (glyph v)) samples;
      Buffer.add_string buf "|\n")
    nets;
  {
    title;
    rendering = Buffer.contents buf;
    nets_plotted = nets;
  }

(* Plot a performance's source waveform is not retained in the
   performance record, so the plotter tool re-simulates when driven
   from a performance alone; this entry point plots from a waveform. *)
let of_simulation ?(width = 64) ~title (result : Sim_event.result) nets =
  render ~width ~title result.Sim_event.waveform nets

(* A performance plot (Fig. 1's performance-plot entity): metric bars
   derived from a performance analysis. *)
let of_performance ?(width = 40) (p : Performance.t) =
  let bar value scale =
    let n = int_of_float (float_of_int width *. min 1.0 (value /. scale)) in
    String.make (max 0 n) '#'
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "=== performance of %s (%s) ===\n" p.Performance.circuit_name
       p.Performance.model_name);
  Buffer.add_string buf
    (Printf.sprintf "critical path %6d ps |%s\n" p.Performance.critical_path_ps
       (bar (float_of_int p.Performance.critical_path_ps) 2000.0));
  Buffer.add_string buf
    (Printf.sprintf "power / vector %6.1f    |%s\n" p.Performance.dynamic_power
       (bar p.Performance.dynamic_power 100.0));
  Buffer.add_string buf
    (Printf.sprintf "switching      %6d    |%s\n" p.Performance.total_switching
       (bar (float_of_int p.Performance.total_switching) 4000.0));
  {
    title = "performance " ^ p.Performance.circuit_name;
    rendering = Buffer.contents buf;
    nets_plotted = [];
  }

let hash p = Digest.to_hex (Digest.string p.rendering)

let pp ppf p = Fmt.string ppf p.rendering
