(* Standard-cell layout: the physical view of Fig. 7.

   [place] implements the placer tool: levelized row placement with
   per-channel trunk routing.  Connectivity lives only in the geometry
   (pins and wire segments touching), so the extractor genuinely
   recovers the netlist from coordinates, and an edit that moves a cell
   without rerouting genuinely breaks LVS. *)

type pin = {
  pname : string;   (* "in0".."inN" or "out" for gate cells; port for pads *)
  px : int;
  py : int;
}

type cell_kind =
  | Gate_cell of Logic.gate_op * int  (* operator, drive *)
  | Input_pad of string               (* primary input port *)
  | Output_pad of string              (* primary output port *)

type cell = {
  cname : string;
  kind : cell_kind;
  x : int;
  y : int;
  width : int;
  height : int;
  pins : pin list;
}

type segment = {
  x1 : int;
  y1 : int;
  x2 : int;
  y2 : int;
}

type t = {
  layout_name : string;
  cells : cell list;
  wires : segment list;
  die_width : int;
  die_height : int;
}

exception Layout_error of string

let layout_errorf fmt = Format.kasprintf (fun s -> raise (Layout_error s)) fmt

let cell_height = 8
let pad_size = 4

let cell_width ~n_inputs = 4 + (2 * n_inputs)

let segment x1 y1 x2 y2 =
  if x1 <> x2 && y1 <> y2 then layout_errorf "segments must be axis-parallel";
  (* normalize so (x1,y1) <= (x2,y2) *)
  if (x1, y1) <= (x2, y2) then { x1; y1; x2; y2 } else { x1 = x2; y1 = y2; x2 = x1; y2 = y1 }

let segment_length s = abs (s.x2 - s.x1) + abs (s.y2 - s.y1)

let on_segment s (x, y) =
  if s.y1 = s.y2 then y = s.y1 && x >= s.x1 && x <= s.x2
  else x = s.x1 && y >= s.y1 && y <= s.y2

let is_endpoint s (x, y) = (x, y) = (s.x1, s.y1) || (x, y) = (s.x2, s.y2)

(* Connectivity is via-style: two segments connect only where they
   share an endpoint (the router drops a via there); crossings and T
   junctions without a via do not connect. *)
let segments_touch a b =
  is_endpoint b (a.x1, a.y1) || is_endpoint b (a.x2, a.y2)
  || is_endpoint a (b.x1, b.y1)
  || is_endpoint a (b.x2, b.y2)

let pin_on_segment p s = is_endpoint s (p.px, p.py)

(* ------------------------------------------------------------------ *)
(* Placement and routing                                               *)
(* ------------------------------------------------------------------ *)

(* Geometry summary:
   - row 0: input pads; rows 1..depth: gates by logic level;
     row depth+1: output pads.
   - channel c runs between row c and row c+1; a net driven from row r
     is assigned a private horizontal trunk track in channel r.
   - every pin reaches its net's trunk with one vertical segment. *)
let place ?(name_suffix = "_layout") nl =
  if Netlist.is_sequential nl then
    layout_errorf "the placer handles combinational netlists only";
  let ranked = Netlist.levelize nl in
  let depth = List.fold_left (fun m (l, _) -> max m l) 1 ranked in
  (* net -> driving row *)
  let driver_row = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace driver_row n 0) nl.Netlist.primary_inputs;
  List.iter
    (fun (level, (g : Netlist.gate)) -> Hashtbl.replace driver_row g.output level)
    ranked;
  (* group gates by row *)
  let rows = Array.make (depth + 2) [] in
  List.iter
    (fun (level, g) -> rows.(level) <- g :: rows.(level))
    (List.rev ranked);
  (* nets needing a trunk, with their channel (= driving row) *)
  let fanout = Netlist.fanout_table nl in
  let routed_nets =
    List.filter (fun n -> fanout n > 0 || List.mem n nl.Netlist.primary_outputs)
      (Netlist.nets nl)
  in
  let channel_nets = Array.make (depth + 2) [] in
  List.iter
    (fun n ->
      match Hashtbl.find_opt driver_row n with
      | Some r -> channel_nets.(r) <- n :: channel_nets.(r)
      | None -> layout_errorf "undriven net %s" n)
    routed_nets;
  Array.iteri (fun i l -> channel_nets.(i) <- List.rev l) channel_nets;
  (* vertical extents: row bases and channel track tables *)
  let row_base = Array.make (depth + 2) 0 in
  let track_of = Hashtbl.create 64 in
  let y = ref 0 in
  for r = 0 to depth + 1 do
    row_base.(r) <- !y;
    let h = if r = 0 || r = depth + 1 then pad_size else cell_height in
    y := !y + h;
    (* channel above row r *)
    List.iteri
      (fun i n ->
        Hashtbl.replace track_of n (!y + 1 + i))
      channel_nets.(r);
    y := !y + List.length channel_nets.(r) + 2
  done;
  let die_height = !y in
  (* horizontal placement per row *)
  let cells = ref [] in
  let pin_positions = Hashtbl.create 64 in
  (* (net, end) -> coordinates of pins on that net *)
  let note_pin net x y = Hashtbl.add pin_positions net (x, y) in
  let place_pads r ports make_kind pin_y_of =
    let x = ref 2 in
    List.iter
      (fun port ->
        let cx = !x in
        x := !x + pad_size + 2;
        let py = pin_y_of (row_base.(r)) in
        let pin = { pname = "pad"; px = cx + (pad_size / 2); py } in
        note_pin port pin.px pin.py;
        cells :=
          { cname = "pad_" ^ port; kind = make_kind port; x = cx;
            y = row_base.(r); width = pad_size; height = pad_size;
            pins = [ pin ] }
          :: !cells)
      ports
  in
  (* input pads: pin on the top edge, reaching channel 0 above *)
  place_pads 0 nl.Netlist.primary_inputs
    (fun p -> Input_pad p)
    (fun base -> base + pad_size);
  (* gate rows *)
  for r = 1 to depth do
    let x = ref 2 in
    List.iter
      (fun (g : Netlist.gate) ->
        let n_inputs = List.length g.inputs in
        let w = cell_width ~n_inputs in
        let cx = !x in
        x := !x + w + 2;
        let base = row_base.(r) in
        let in_pins =
          List.mapi
            (fun i net ->
              let p =
                { pname = Printf.sprintf "in%d" i; px = cx + 1 + (2 * i);
                  py = base }
              in
              note_pin net p.px p.py;
              p)
            g.inputs
        in
        let out_pin =
          { pname = "out"; px = cx + w - 1; py = base + cell_height }
        in
        note_pin g.output out_pin.px out_pin.py;
        cells :=
          { cname = g.gname; kind = Gate_cell (g.op, g.drive); x = cx;
            y = base; width = w; height = cell_height;
            pins = out_pin :: in_pins }
          :: !cells)
      rows.(r)
  done;
  (* output pads: pin on the bottom edge *)
  place_pads (depth + 1) nl.Netlist.primary_outputs
    (fun p -> Output_pad p)
    (fun base -> base);
  let cells = List.rev !cells in
  let die_width =
    List.fold_left (fun m c -> max m (c.x + c.width + 2)) 8 cells
  in
  (* routing: one trunk per net plus a vertical per pin *)
  let wires = ref [] in
  List.iter
    (fun net ->
      let track =
        match Hashtbl.find_opt track_of net with
        | Some t -> t
        | None -> layout_errorf "no track for net %s" net
      in
      let pins = Hashtbl.find_all pin_positions net in
      (* Trunk split at every connection x, so each vertical shares an
         endpoint (a via) with the trunk pieces it joins. *)
      let xs =
        List.map fst pins |> List.sort_uniq compare
      in
      let rec chain = function
        | x :: (x' :: _ as rest) ->
          wires := segment x track x' track :: !wires;
          chain rest
        | [ _ ] | [] -> ()
      in
      chain xs;
      List.iter
        (fun (px, py) -> wires := segment px py px track :: !wires)
        pins)
    routed_nets;
  {
    layout_name = nl.Netlist.name ^ name_suffix;
    cells;
    wires = List.rev !wires;
    die_width;
    die_height;
  }

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let area l = l.die_width * l.die_height
let cell_count l = List.length l.cells
let wirelength l = List.fold_left (fun acc s -> acc + segment_length s) 0 l.wires

let gate_cells l =
  List.filter (fun c -> match c.kind with Gate_cell _ -> true
                                        | Input_pad _ | Output_pad _ -> false)
    l.cells

(* ------------------------------------------------------------------ *)
(* Edits (the layout-editor tool)                                      *)
(* ------------------------------------------------------------------ *)

type edit =
  | Move_cell of string * int * int   (* cell, dx, dy -- does NOT reroute *)
  | Delete_cell of string
  | Rename_layout of string
  | Add_segment of segment
  | Delete_segment of segment

let find_cell l cname = List.find_opt (fun c -> c.cname = cname) l.cells

let apply_edit l = function
  | Rename_layout layout_name -> { l with layout_name }
  | Move_cell (cname, dx, dy) ->
    if find_cell l cname = None then layout_errorf "no cell %s" cname;
    let move c =
      if c.cname <> cname then c
      else
        { c with x = c.x + dx; y = c.y + dy;
          pins = List.map (fun p -> { p with px = p.px + dx; py = p.py + dy }) c.pins }
    in
    { l with cells = List.map move l.cells }
  | Delete_cell cname ->
    if find_cell l cname = None then layout_errorf "no cell %s" cname;
    { l with cells = List.filter (fun c -> c.cname <> cname) l.cells }
  | Add_segment s -> { l with wires = l.wires @ [ s ] }
  | Delete_segment s ->
    if not (List.mem s l.wires) then layout_errorf "no such segment";
    let rec drop_first = function
      | [] -> []
      | x :: rest -> if x = s then rest else x :: drop_first rest
    in
    { l with wires = drop_first l.wires }

let apply_edits l edits = List.fold_left apply_edit l edits

(* ------------------------------------------------------------------ *)
(* Hash and printing                                                   *)
(* ------------------------------------------------------------------ *)

let hash l =
  let buf = Buffer.create 512 in
  Buffer.add_string buf l.layout_name;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "|%s@%d,%d:%dx%d" c.cname c.x c.y c.width c.height))
    l.cells;
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "|%d,%d-%d,%d" s.x1 s.y1 s.x2 s.y2))
    l.wires;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf l =
  Fmt.pf ppf "layout %s: %d cells, %d segments, %dx%d (area %d, wirelength %d)"
    l.layout_name (cell_count l) (List.length l.wires) l.die_width l.die_height
    (area l) (wirelength l)
