(** Waveforms: per-net value changes over time, produced by the
    event-driven simulator and consumed by the plotter and the power
    model. *)

type trace = (int * Logic.value) list
(** [(time_ps, new_value)] pairs in strictly increasing time order. *)

type t

val empty : t
val nets : t -> string list
val end_time_ps : t -> int
val trace : t -> string -> trace

val value_at : t -> string -> int -> Logic.value
(** The last change at or before the given time; X before any change. *)

val final_value : t -> string -> Logic.value

val record : t -> string -> int -> Logic.value -> t
(** Append a change.  Waveforms are canonical by construction:
    @raise Invalid_argument on out-of-order or redundant changes. *)

val set_end_time : t -> int -> t
val transition_count : t -> string -> int
val total_transitions : t -> int

val sample : t -> string -> step_ps:int -> Logic.value list
(** Values at a fixed step from time 0 to the end time. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
