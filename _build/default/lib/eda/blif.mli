(** BLIF-style netlist interchange.

    A pragmatic subset of Berkeley's BLIF: [.model], [.inputs],
    [.outputs], [.gate] lines naming this library's cells (structure
    and drive survive a round trip), [.names] on-set covers for
    importing third-party two-level logic, [.end], comments and line
    continuations.  This is the on-disk circuit form of the hercules
    CLI. *)

exception Blif_error of string

val to_string : Netlist.t -> string
val of_string : string -> Netlist.t
(** @raise Blif_error on unsupported directives or malformed input;
    @raise Netlist.Netlist_error when the parsed structure is invalid. *)

val to_file : string -> Netlist.t -> unit
val of_file : string -> Netlist.t
