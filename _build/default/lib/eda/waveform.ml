(* Waveforms: per-net value changes over time, as produced by the
   event-driven simulator and consumed by the plotter. *)

module String_map = Map.Make (String)

type trace = (int * Logic.value) list
(* (time_ps, new value), strictly increasing times *)

type t = {
  end_time_ps : int;
  traces : trace String_map.t;
}

let empty = { end_time_ps = 0; traces = String_map.empty }

let nets t = List.map fst (String_map.bindings t.traces)
let end_time_ps t = t.end_time_ps

let trace t net =
  match String_map.find_opt net t.traces with Some tr -> tr | None -> []

(* Value of a net at a given time (the last change at or before it). *)
let value_at t net time =
  let rec scan last = function
    | [] -> last
    | (ts, v) :: rest -> if ts <= time then scan v rest else last
  in
  scan Logic.VX (trace t net)

let final_value t net = value_at t net t.end_time_ps

(* Record a change; out-of-order or redundant changes are rejected so a
   waveform is canonical by construction. *)
let record t net time v =
  let tr = trace t net in
  let rec last = function
    | [] -> None
    | [ x ] -> Some x
    | _ :: rest -> last rest
  in
  (match last tr with
  | Some (ts, _) when ts > time -> invalid_arg "Waveform.record: time going backwards"
  | Some (_, v') when v' = v -> invalid_arg "Waveform.record: redundant change"
  | Some _ | None -> ());
  { end_time_ps = max t.end_time_ps time;
    traces = String_map.add net (tr @ [ (time, v) ]) t.traces }

let set_end_time t time = { t with end_time_ps = max t.end_time_ps time }

let transition_count t net = List.length (trace t net)

let total_transitions t =
  String_map.fold (fun _ tr acc -> acc + List.length tr) t.traces 0

(* Sample a net at a fixed step: what the plotter draws. *)
let sample t net ~step_ps =
  if step_ps <= 0 then invalid_arg "Waveform.sample";
  let rec go acc time =
    if time > t.end_time_ps then List.rev acc
    else go (value_at t net time :: acc) (time + step_ps)
  in
  go [] 0

let hash t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int t.end_time_ps);
  String_map.iter
    (fun net tr ->
      Buffer.add_string buf net;
      List.iter
        (fun (ts, v) ->
          Buffer.add_string buf (string_of_int ts);
          Buffer.add_string buf (Logic.value_name v))
        tr)
    t.traces;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf t =
  Fmt.pf ppf "waveform: %d nets, %d transitions, %d ps"
    (List.length (nets t)) (total_transitions t) t.end_time_ps
