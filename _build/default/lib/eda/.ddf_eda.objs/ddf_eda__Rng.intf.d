lib/eda/rng.mli:
