lib/eda/vcd.ml: Buffer Char List Logic Printf String Waveform
