lib/eda/performance.mli: Device_model Format Logic Netlist Sim_compiled Stimuli Waveform
