lib/eda/pla.ml: Array Buffer Digest Fmt Fun Hashtbl Layout List Logic Netlist Printf Sim_compiled Stimuli String
