lib/eda/stimuli.mli: Format Logic Netlist Rng
