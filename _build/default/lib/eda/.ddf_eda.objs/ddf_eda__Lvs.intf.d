lib/eda/lvs.mli: Format Netlist
