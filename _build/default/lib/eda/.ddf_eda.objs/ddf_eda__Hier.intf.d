lib/eda/hier.mli: Format Netlist
