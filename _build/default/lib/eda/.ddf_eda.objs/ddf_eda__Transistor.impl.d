lib/eda/transistor.ml: Buffer Digest Fmt Hashtbl List Logic Netlist Printf Stimuli
