lib/eda/transistor.mli: Format Logic Netlist Rng
