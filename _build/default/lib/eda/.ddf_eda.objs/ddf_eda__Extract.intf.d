lib/eda/extract.mli: Format Layout Netlist
