lib/eda/stimuli.ml: Buffer Digest Fmt List Logic Netlist Rng
