lib/eda/rng.ml: Array Int64 List
