lib/eda/optimize.ml: Device_model Digest Fmt List Netlist Performance Printf Rng
