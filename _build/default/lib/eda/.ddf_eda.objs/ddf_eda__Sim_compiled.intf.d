lib/eda/sim_compiled.mli: Logic Netlist Stimuli
