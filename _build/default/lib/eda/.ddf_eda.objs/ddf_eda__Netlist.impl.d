lib/eda/netlist.ml: Buffer Digest Fmt Format Hashtbl List Logic Map Printf Set String
