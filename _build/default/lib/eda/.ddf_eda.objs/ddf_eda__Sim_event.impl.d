lib/eda/sim_event.ml: Device_model Hashtbl List Logic Map Netlist Stimuli Waveform
