lib/eda/edit_script.mli: Format Logic Netlist
