lib/eda/edit_script.ml: Digest Fmt List Logic Netlist Printf String
