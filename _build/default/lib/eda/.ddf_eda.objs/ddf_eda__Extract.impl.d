lib/eda/extract.ml: Array Digest Fmt Format Fun Hashtbl Layout List Netlist Printf
