lib/eda/performance.ml: Buffer Device_model Digest Fmt Hashtbl List Logic Netlist Printf Sim_compiled Sim_event Stimuli Waveform
