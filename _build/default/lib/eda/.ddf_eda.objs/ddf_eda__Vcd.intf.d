lib/eda/vcd.mli: Waveform
