lib/eda/layout.mli: Format Logic Netlist
