lib/eda/sim_event.mli: Device_model Logic Netlist Stimuli Waveform
