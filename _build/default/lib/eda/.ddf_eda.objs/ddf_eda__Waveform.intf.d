lib/eda/waveform.mli: Format Logic
