lib/eda/pla.mli: Format Layout Netlist
