lib/eda/optimize.mli: Device_model Format Netlist Rng
