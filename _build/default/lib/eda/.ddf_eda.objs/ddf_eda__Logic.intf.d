lib/eda/logic.mli:
