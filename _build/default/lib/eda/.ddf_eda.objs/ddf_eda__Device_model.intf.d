lib/eda/device_model.mli: Format Netlist
