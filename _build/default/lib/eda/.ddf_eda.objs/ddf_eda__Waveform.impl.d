lib/eda/waveform.ml: Buffer Digest Fmt List Logic Map String
