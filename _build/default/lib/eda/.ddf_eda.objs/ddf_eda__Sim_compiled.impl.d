lib/eda/sim_compiled.ml: Array Digest Hashtbl List Logic Netlist Printf Stimuli
