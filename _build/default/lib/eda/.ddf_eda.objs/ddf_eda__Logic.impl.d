lib/eda/logic.ml: List
