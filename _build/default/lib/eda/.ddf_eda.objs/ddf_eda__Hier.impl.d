lib/eda/hier.ml: Circuits Fmt Format Fun Hashtbl List Netlist Printf
