lib/eda/netlist.mli: Format Logic
