lib/eda/lvs.ml: Digest Fmt Hashtbl List Logic Netlist Printf String
