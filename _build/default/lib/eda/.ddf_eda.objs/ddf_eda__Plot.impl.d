lib/eda/plot.ml: Buffer Digest Fmt List Logic Performance Printf Sim_event String Waveform
