lib/eda/blif.ml: Buffer Format Fun Hashtbl List Logic Netlist Printf String
