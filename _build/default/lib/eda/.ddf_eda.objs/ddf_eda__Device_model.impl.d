lib/eda/device_model.ml: Digest Float Fmt List Logic Netlist Printf
