lib/eda/layout.ml: Array Buffer Digest Fmt Format Hashtbl List Logic Netlist Printf
