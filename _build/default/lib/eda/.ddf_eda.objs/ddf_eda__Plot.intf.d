lib/eda/plot.mli: Format Performance Sim_event Waveform
