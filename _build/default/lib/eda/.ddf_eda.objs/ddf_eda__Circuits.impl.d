lib/eda/circuits.ml: Fun Hashtbl List Logic Netlist Printf Rng
