lib/eda/circuits.mli: Netlist Rng
