lib/eda/blif.mli: Netlist
