(* A small deterministic splitmix64 generator.

   Workload generation, optimizer search and random netlists must be
   reproducible across runs and independent of the global [Random]
   state, so every consumer threads its own generator. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  (* 53 uniform bits in [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
