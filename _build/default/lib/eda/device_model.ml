(* Device models: process parameters scaling the timing and power of
   every gate.  The device-model editor of Fig. 1 manipulates these. *)

type t = {
  model_name : string;
  process_nm : int;       (* feature size *)
  vdd_mv : int;           (* supply voltage *)
  vth_mv : int;           (* threshold voltage *)
  delay_scale : float;    (* multiplies intrinsic gate delay *)
  power_scale : float;    (* multiplies switching energy *)
}

exception Model_error of string

let check m =
  if m.vth_mv >= m.vdd_mv then
    raise (Model_error "threshold must be below supply");
  if m.delay_scale <= 0.0 || m.power_scale <= 0.0 then
    raise (Model_error "scales must be positive");
  m

let create ~model_name ~process_nm ~vdd_mv ~vth_mv ~delay_scale ~power_scale =
  check { model_name; process_nm; vdd_mv; vth_mv; delay_scale; power_scale }

(* A plausible default: generic 800nm-era process. *)
let default =
  create ~model_name:"generic_800" ~process_nm:800 ~vdd_mv:5000 ~vth_mv:700
    ~delay_scale:1.0 ~power_scale:1.0

let fast =
  create ~model_name:"fast_600" ~process_nm:600 ~vdd_mv:5000 ~vth_mv:650
    ~delay_scale:0.8 ~power_scale:1.15

let low_power =
  create ~model_name:"lp_800" ~process_nm:800 ~vdd_mv:3300 ~vth_mv:800
    ~delay_scale:1.3 ~power_scale:0.6

(* Edits applied by the device-model editor tool. *)
type edit =
  | Rename of string
  | Set_vdd of int
  | Set_vth of int
  | Scale_delay of float
  | Scale_power of float

let apply_edit m = function
  | Rename model_name -> check { m with model_name }
  | Set_vdd vdd_mv -> check { m with vdd_mv }
  | Set_vth vth_mv -> check { m with vth_mv }
  | Scale_delay f -> check { m with delay_scale = m.delay_scale *. f }
  | Scale_power f -> check { m with power_scale = m.power_scale *. f }

let apply_edits m edits = List.fold_left apply_edit m edits

(* Effective gate delay under this model: intrinsic delay scaled by the
   process, divided by drive strength, plus fanout loading. *)
let gate_delay_ps m (g : Netlist.gate) ~fanout =
  let intrinsic = float_of_int (Logic.intrinsic_delay_ps g.op) in
  let drive = float_of_int g.drive in
  let load = 3.0 *. float_of_int fanout in
  let d = (intrinsic /. sqrt drive) +. load in
  let d = d *. m.delay_scale in
  max 1 (int_of_float (Float.round d))

let gate_energy m (g : Netlist.gate) =
  Logic.energy_weight g.op *. float_of_int g.drive *. m.power_scale

let hash m =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%d|%d|%f|%f" m.model_name m.process_nm m.vdd_mv
          m.vth_mv m.delay_scale m.power_scale))

let pp ppf m =
  Fmt.pf ppf "model %s (%dnm, %.1fV, delay x%.2f, power x%.2f)" m.model_name
    m.process_nm
    (float_of_int m.vdd_mv /. 1000.0)
    m.delay_scale m.power_scale
