(* Edit scripts: the data consumed by the netlist-editor tool.

   Editing tasks are what versioning hangs off in the paper (Fig. 11):
   a task whose data dependency's source and target are the same entity
   type.  A script is itself a design datum, so it hashes and prints. *)

type edit =
  | Rename of string
  | Add_gate of {
      gname : string;
      op : Logic.gate_op;
      inputs : string list;
      output : string;
      drive : int;
    }
  | Remove_gate of string
  | Set_drive of string * int
  | Insert_buffer of { net : string; gname : string }
    (* re-drive all readers of [net] through a new buffer *)

type t = {
  script_name : string;
  edits : edit list;
}

exception Edit_error of string

let create ?(name = "edit") edits = { script_name = name; edits }

let apply_one nl = function
  | Rename name -> Netlist.rename nl name
  | Add_gate { gname; op; inputs; output; drive } ->
    Netlist.add_gate nl (Netlist.gate ~drive gname op inputs output)
  | Remove_gate gname -> Netlist.remove_gate nl gname
  | Set_drive (gname, drive) -> Netlist.set_drive nl gname drive
  | Insert_buffer { net; gname } ->
    let buffered = net ^ "_buf" in
    let reads (g : Netlist.gate) = List.mem net g.Netlist.inputs in
    if not (List.exists reads nl.Netlist.gates) then
      raise (Edit_error (Printf.sprintf "no reader of net %s" net));
    let retarget (g : Netlist.gate) =
      if reads g then
        { g with
          Netlist.inputs =
            List.map (fun i -> if i = net then buffered else i) g.Netlist.inputs }
      else g
    in
    let gates =
      List.map retarget nl.Netlist.gates
      @ [ Netlist.gate gname Logic.Buf [ net ] buffered ]
    in
    Netlist.create ~name:nl.Netlist.name
      ~primary_inputs:nl.Netlist.primary_inputs
      ~primary_outputs:nl.Netlist.primary_outputs gates

let apply nl t = List.fold_left apply_one nl t.edits

(* Applying a script to nothing creates a design from scratch (the
   optional dependency of the edited-netlist rule left unfilled). *)
let apply_from_scratch ~primary_inputs ~primary_outputs t =
  let seed =
    Netlist.create ~name:t.script_name ~primary_inputs
      ~primary_outputs:[] []
  in
  let nl = apply seed t in
  Netlist.create ~name:nl.Netlist.name
    ~primary_inputs:nl.Netlist.primary_inputs ~primary_outputs
    nl.Netlist.gates

let edit_to_string = function
  | Rename n -> "rename " ^ n
  | Add_gate { gname; op; inputs; output; drive } ->
    Printf.sprintf "add %s=%s(%s)->%s x%d" gname (Logic.op_name op)
      (String.concat "," inputs) output drive
  | Remove_gate g -> "remove " ^ g
  | Set_drive (g, d) -> Printf.sprintf "drive %s x%d" g d
  | Insert_buffer { net; gname } -> Printf.sprintf "buffer %s via %s" net gname

let hash t =
  Digest.to_hex
    (Digest.string
       (t.script_name ^ "|"
       ^ String.concat ";" (List.map edit_to_string t.edits)))

let pp ppf t =
  Fmt.pf ppf "@[<v>edit script %s:@,%a@]" t.script_name
    (Fmt.list ~sep:Fmt.cut Fmt.string)
    (List.map edit_to_string t.edits)
