(* Gate-level netlists: the central design-data type of the substrate.

   A netlist is combinational: primary inputs drive a DAG of gates.
   Gates carry a drive strength so the statistical optimizers have a
   real design space, and the timing model a real knob. *)

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type gate = {
  gname : string;
  op : Logic.gate_op;
  inputs : string list;
  output : string;
  drive : int;  (* 1, 2 or 4 *)
}

(* A D flip-flop: [q] takes the value of [d] at each clock edge (one
   edge per stimulus vector; the clock itself is implicit). *)
type flop = {
  fname : string;
  d : string;
  q : string;
  init : Logic.value;
}

type t = {
  name : string;
  primary_inputs : string list;
  primary_outputs : string list;
  gates : gate list;
  flops : flop list;
}

exception Netlist_error of string

let netlist_errorf fmt = Format.kasprintf (fun s -> raise (Netlist_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction and validation                                         *)
(* ------------------------------------------------------------------ *)

let gate ?(drive = 1) gname op inputs output =
  if not (Logic.arity_ok op (List.length inputs)) then
    netlist_errorf "gate %s: bad arity for %s" gname (Logic.op_name op);
  if not (List.mem drive [ 1; 2; 4 ]) then
    netlist_errorf "gate %s: drive must be 1, 2 or 4" gname;
  { gname; op; inputs; output; drive }

let flop ?(init = Logic.V0) fname ~d ~q = { fname; d; q; init }

let is_sequential nl = nl.flops <> []

let driver_table nl =
  List.fold_left
    (fun acc g ->
      if String_map.mem g.output acc then
        netlist_errorf "net %s has several drivers" g.output
      else String_map.add g.output g acc)
    String_map.empty nl.gates

let flop_outputs nl = List.map (fun f -> f.q) nl.flops

let nets nl =
  let add acc n = String_set.add n acc in
  let acc = List.fold_left add String_set.empty nl.primary_inputs in
  let acc =
    List.fold_left
      (fun acc g -> List.fold_left add (add acc g.output) g.inputs)
      acc nl.gates
  in
  let acc =
    List.fold_left (fun acc f -> add (add acc f.d) f.q) acc nl.flops
  in
  String_set.elements acc

let validate nl =
  if nl.name = "" then netlist_errorf "netlist name must be non-empty";
  let drivers = driver_table nl in
  let pi = String_set.of_list nl.primary_inputs in
  (* flop outputs are sources for the combinational network but must
     not collide with gate drivers or primary inputs *)
  let flop_q = String_set.of_list (flop_outputs nl) in
  if String_set.cardinal flop_q <> List.length nl.flops then
    netlist_errorf "two flops drive the same net";
  String_set.iter
    (fun q ->
      if String_map.mem q drivers then
        netlist_errorf "flop output %s is also driven by a gate" q;
      if String_set.mem q pi then
        netlist_errorf "flop output %s is a primary input" q)
    flop_q;
  let driven n =
    String_set.mem n pi || String_map.mem n drivers || String_set.mem n flop_q
  in
  List.iter
    (fun f ->
      if not (driven f.d) then
        netlist_errorf "flop %s data input %s is undriven" f.fname f.d)
    nl.flops;
  if String_set.cardinal pi <> List.length nl.primary_inputs then
    netlist_errorf "duplicate primary input";
  String_set.iter
    (fun n ->
      if String_map.mem n drivers then
        netlist_errorf "primary input %s is driven by a gate" n)
    pi;
  let gate_names = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.add gate_names f.fname ()) nl.flops;
  if Hashtbl.length gate_names <> List.length nl.flops then
    netlist_errorf "duplicate flop name";
  let flop_q = String_set.of_list (flop_outputs nl) in
  List.iter
    (fun g ->
      if Hashtbl.mem gate_names g.gname then
        netlist_errorf "duplicate gate name %s" g.gname;
      Hashtbl.add gate_names g.gname ();
      List.iter
        (fun i ->
          if
            (not (String_set.mem i pi))
            && (not (String_map.mem i drivers))
            && not (String_set.mem i flop_q)
          then netlist_errorf "gate %s input %s is undriven" g.gname i)
        g.inputs)
    nl.gates;
  List.iter
    (fun o ->
      if
        (not (String_map.mem o drivers))
        && (not (String_set.mem o pi))
        && not (String_set.mem o flop_q)
      then netlist_errorf "primary output %s is undriven" o)
    nl.primary_outputs

let create ?(flops = []) ~name ~primary_inputs ~primary_outputs gates =
  let nl = { name; primary_inputs; primary_outputs; gates; flops } in
  validate nl;
  nl

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let gate_count nl = List.length nl.gates
let net_count nl = List.length (nets nl)

let transistor_count nl =
  List.fold_left
    (fun acc g -> acc + Logic.transistor_count g.op (List.length g.inputs))
    0 nl.gates

let fanout_table nl =
  let tbl = Hashtbl.create 64 in
  let bump n = Hashtbl.replace tbl n (1 + try Hashtbl.find tbl n with Not_found -> 0) in
  List.iter (fun g -> List.iter bump g.inputs) nl.gates;
  List.iter bump nl.primary_outputs;
  fun net -> try Hashtbl.find tbl net with Not_found -> 0

(* Topological gate order; raises on a combinational cycle. *)
let levelize nl =
  let drivers = driver_table nl in
  let pi = String_set.of_list (nl.primary_inputs @ flop_outputs nl) in
  let level = Hashtbl.create 64 in
  String_set.iter (fun n -> Hashtbl.replace level n 0) pi;
  let rec net_level visiting n =
    match Hashtbl.find_opt level n with
    | Some l -> l
    | None ->
      if String_set.mem n visiting then
        netlist_errorf "combinational cycle through net %s" n;
      if String_set.mem n pi then 0
      else begin
        let g =
          match String_map.find_opt n drivers with
          | Some g -> g
          | None -> netlist_errorf "undriven net %s" n
        in
        let visiting = String_set.add n visiting in
        let l =
          1 + List.fold_left (fun m i -> max m (net_level visiting i)) 0 g.inputs
        in
        Hashtbl.replace level n l;
        l
      end
  in
  let ranked =
    List.map (fun g -> (net_level String_set.empty g.output, g)) nl.gates
  in
  List.stable_sort (fun (a, _) (b, _) -> compare a b) ranked

let topological_gates nl = List.map snd (levelize nl)

let depth nl =
  List.fold_left (fun m (l, _) -> max m l) 0 (levelize nl)

(* Flop state: current q values, by flop name. *)
type state = (string * Logic.value) list

let initial_state nl = List.map (fun f -> (f.fname, f.init)) nl.flops

(* One combinational settle: all net values under the inputs and the
   current state. *)
let settle nl state env =
  let values = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let v = try List.assoc n env with Not_found -> Logic.VX in
      Hashtbl.replace values n v)
    nl.primary_inputs;
  List.iter
    (fun f ->
      let v = try List.assoc f.fname state with Not_found -> f.init in
      Hashtbl.replace values f.q v)
    nl.flops;
  List.iter
    (fun g ->
      let ins =
        List.map
          (fun i -> try Hashtbl.find values i with Not_found -> Logic.VX)
          g.inputs
      in
      Hashtbl.replace values g.output (Logic.eval g.op ins))
    (topological_gates nl);
  fun net -> try Hashtbl.find values net with Not_found -> Logic.VX

(* Zero-delay functional evaluation of the outputs; sequential
   netlists read their flops from [state] (initial values by default). *)
let eval ?state nl env =
  let state = match state with Some s -> s | None -> initial_state nl in
  let value = settle nl state env in
  List.map (fun o -> (o, value o)) nl.primary_outputs

(* One clock cycle: settle, capture d into every flop, return the new
   state and the settled outputs. *)
let step nl state env =
  let value = settle nl state env in
  let state' = List.map (fun f -> (f.fname, value f.d)) nl.flops in
  (state', List.map (fun o -> (o, value o)) nl.primary_outputs)

(* Run a vector sequence through the clocked semantics. *)
let run_cycles nl env_list =
  let rec go state acc = function
    | [] -> List.rev acc
    | env :: rest ->
      let state', outs = step nl state env in
      go state' (outs :: acc) rest
  in
  go (initial_state nl) [] env_list

(* ------------------------------------------------------------------ *)
(* Editing primitives (used by the netlist editor tool)                *)
(* ------------------------------------------------------------------ *)

let rename nl name = { nl with name }

let add_gate nl g =
  let nl = { nl with gates = nl.gates @ [ g ] } in
  validate nl;
  nl

let remove_gate nl gname =
  if not (List.exists (fun g -> g.gname = gname) nl.gates) then
    netlist_errorf "no gate named %s" gname;
  let nl = { nl with gates = List.filter (fun g -> g.gname <> gname) nl.gates } in
  validate nl;
  nl

let set_drive nl gname drive =
  if not (List.mem drive [ 1; 2; 4 ]) then
    netlist_errorf "drive must be 1, 2 or 4";
  let found = ref false in
  let gates =
    List.map
      (fun g ->
        if g.gname = gname then begin
          found := true;
          { g with drive }
        end
        else g)
      nl.gates
  in
  if not !found then netlist_errorf "no gate named %s" gname;
  { nl with gates }

let find_gate nl gname = List.find_opt (fun g -> g.gname = gname) nl.gates

(* ------------------------------------------------------------------ *)
(* Structural hash (content addressing for the design-object store)    *)
(* ------------------------------------------------------------------ *)

let to_canonical_string nl =
  let buf = Buffer.create 256 in
  Buffer.add_string buf nl.name;
  Buffer.add_string buf "|pi:";
  Buffer.add_string buf (String.concat "," nl.primary_inputs);
  Buffer.add_string buf "|po:";
  Buffer.add_string buf (String.concat "," nl.primary_outputs);
  let gs =
    List.sort (fun a b -> compare a.gname b.gname) nl.gates
  in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "|%s:%s(%s)->%s@%d" g.gname (Logic.op_name g.op)
           (String.concat "," g.inputs) g.output g.drive))
    gs;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "|%s:dff(%s)->%s=%s" f.fname f.d f.q
           (Logic.value_name f.init)))
    (List.sort (fun a b -> compare a.fname b.fname) nl.flops);
  Buffer.contents buf

let hash nl = Digest.to_hex (Digest.string (to_canonical_string nl))

let equal a b = String.equal (to_canonical_string a) (to_canonical_string b)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp ppf nl =
  Fmt.pf ppf "@[<v>netlist %s (%d gates, depth %d)@,inputs: %s@,outputs: %s@,%a@]"
    nl.name (gate_count nl) (depth nl)
    (String.concat " " nl.primary_inputs)
    (String.concat " " nl.primary_outputs)
    (Fmt.list ~sep:Fmt.cut (fun ppf g ->
         Fmt.pf ppf "%s = %s(%s) [x%d]" g.output (Logic.op_name g.op)
           (String.concat ", " g.inputs) g.drive))
    nl.gates;
  if nl.flops <> [] then
    Fmt.pf ppf "@,%a"
      (Fmt.list ~sep:Fmt.cut (fun ppf f ->
           Fmt.pf ppf "%s = dff(%s) init %s" f.q f.d
             (Logic.value_name f.init)))
      nl.flops
