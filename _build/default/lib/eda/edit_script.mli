(** Edit scripts: the data carried by a netlist-editor tool instance.

    Editing tasks are what versioning hangs off in the paper (Fig. 11):
    tasks whose data dependency's source and target share an entity
    type.  A script is itself a design datum, so it hashes and prints. *)

type edit =
  | Rename of string
  | Add_gate of {
      gname : string;
      op : Logic.gate_op;
      inputs : string list;
      output : string;
      drive : int;
    }
  | Remove_gate of string
  | Set_drive of string * int
  | Insert_buffer of { net : string; gname : string }
      (** re-drive all readers of [net] through a new buffer *)

type t = {
  script_name : string;
  edits : edit list;
}

exception Edit_error of string

val create : ?name:string -> edit list -> t
val apply : Netlist.t -> t -> Netlist.t

val apply_from_scratch :
  primary_inputs:string list -> primary_outputs:string list -> t -> Netlist.t
(** Editing with the optional base dependency left unfilled: create a
    design from nothing. *)

val edit_to_string : edit -> string
val hash : t -> string
val pp : Format.formatter -> t -> unit
