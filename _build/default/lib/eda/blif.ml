(* BLIF-style netlist interchange.

   A pragmatic subset of Berkeley's BLIF: `.model`, `.inputs`,
   `.outputs`, `.gate` lines naming our cell library (so structure and
   drive survive a round trip), `.names` cover tables for import of
   third-party two-level logic, `.end` and comments.  This is the
   on-disk form the hercules CLI reads and writes. *)

exception Blif_error of string

let blif_errorf fmt = Format.kasprintf (fun s -> raise (Blif_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" nl.Netlist.name);
  Buffer.add_string buf
    (".inputs " ^ String.concat " " nl.Netlist.primary_inputs ^ "\n");
  Buffer.add_string buf
    (".outputs " ^ String.concat " " nl.Netlist.primary_outputs ^ "\n");
  List.iter
    (fun (f : Netlist.flop) ->
      Buffer.add_string buf
        (Printf.sprintf ".latch %s %s %s # %s\n" f.Netlist.d f.Netlist.q
           (match f.Netlist.init with
           | Logic.V0 -> "0"
           | Logic.V1 -> "1"
           | Logic.VX -> "2")
           f.Netlist.fname))
    nl.Netlist.flops;
  List.iter
    (fun (g : Netlist.gate) ->
      Buffer.add_string buf
        (Printf.sprintf ".gate %s_x%d %s O=%s # %s\n"
           (Logic.op_name g.Netlist.op)
           g.Netlist.drive
           (String.concat " "
              (List.mapi
                 (fun i net -> Printf.sprintf "I%d=%s" i net)
                 g.Netlist.inputs))
           g.Netlist.output g.Netlist.gname))
    nl.Netlist.gates;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* Logical lines: strip comments, join continuation backslashes. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line = strip_comment line in
      let line = String.trim line in
      if line = "" then join acc pending rest
      else if String.length line > 0 && line.[String.length line - 1] = '\\'
      then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else join ((pending ^ line) :: acc) "" rest
  in
  join [] "" raw

let words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

(* Parse "nand_x2" into (Nand, 2). *)
let parse_cell_name name =
  match String.rindex_opt name '_' with
  | Some i when i + 2 <= String.length name && name.[i + 1] = 'x' -> (
    let base = String.sub name 0 i in
    let drive_str = String.sub name (i + 2) (String.length name - i - 2) in
    match (Logic.op_of_name base, int_of_string_opt drive_str) with
    | Some op, Some drive -> (op, drive)
    | _, _ -> blif_errorf "unknown cell %S" name)
  | Some _ | None -> (
    match Logic.op_of_name name with
    | Some op -> (op, 1)
    | None -> blif_errorf "unknown cell %S" name)

(* A .names cover: translate single-output two-level logic into AND/OR
   gates (sufficient for importing external BLIF). *)
let translate_names fresh inputs output rows =
  match (inputs, rows) with
  | [], [ ("", "1") ] | [], [] ->
    blif_errorf "constant .names for %s unsupported" output
  | _, [] -> blif_errorf ".names %s has no cover" output
  | _, rows ->
    let invs = Hashtbl.create 4 in
    let gates = ref [] in
    let rail net value =
      match value with
      | '1' -> Some net
      | '0' ->
        Some
          (match Hashtbl.find_opt invs net with
          | Some inv -> inv
          | None ->
            let inv = fresh (net ^ "_bar") in
            gates :=
              Netlist.gate (fresh ("inv_" ^ net)) Logic.Not [ net ] inv
              :: !gates;
            Hashtbl.add invs net inv;
            inv)
      | '-' -> None
      | c -> blif_errorf "bad cover character %C" c
    in
    let term_nets =
      List.map
        (fun (pattern, out_value) ->
          if out_value <> "1" then
            blif_errorf ".names %s: only on-set covers supported" output;
          if String.length pattern <> List.length inputs then
            blif_errorf ".names %s: cover width mismatch" output;
          let literals =
            List.filteri (fun _ _ -> true) inputs
            |> List.mapi (fun i net -> rail net pattern.[i])
            |> List.filter_map Fun.id
          in
          match literals with
          | [] -> blif_errorf ".names %s: tautological row" output
          | [ single ] -> single
          | many ->
            let t = fresh (output ^ "_t") in
            gates := Netlist.gate (fresh ("and_" ^ output)) Logic.And many t :: !gates;
            t)
        rows
    in
    (match term_nets with
    | [ single ] ->
      gates := Netlist.gate (fresh ("buf_" ^ output)) Logic.Buf [ single ] output :: !gates
    | many ->
      gates := Netlist.gate (fresh ("or_" ^ output)) Logic.Or many output :: !gates);
    List.rev !gates

let of_string text =
  let lines = logical_lines text in
  let model = ref "" in
  let inputs = ref [] and outputs = ref [] in
  let gates = ref [] in
  let flops = ref [] in
  let flop_counter = ref 0 in
  let counter = ref 0 in
  let fresh base =
    incr counter;
    Printf.sprintf "%s_%d" base !counter
  in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
      match words line with
      | ".model" :: name :: _ ->
        model := name;
        go rest
      | ".inputs" :: nets ->
        inputs := !inputs @ nets;
        go rest
      | ".outputs" :: nets ->
        outputs := !outputs @ nets;
        go rest
      | ".gate" :: cell :: bindings ->
        let op, drive = parse_cell_name cell in
        let ins, out = ref [], ref None in
        List.iter
          (fun b ->
            match String.index_opt b '=' with
            | None -> blif_errorf "bad binding %S" b
            | Some i ->
              let formal = String.sub b 0 i in
              let actual = String.sub b (i + 1) (String.length b - i - 1) in
              if formal = "O" then out := Some actual
              else ins := actual :: !ins)
          bindings;
        let output =
          match !out with
          | Some o -> o
          | None -> blif_errorf ".gate without O= binding"
        in
        gates :=
          Netlist.gate ~drive (fresh "g") op (List.rev !ins) output :: !gates;
        go rest
      | ".latch" :: rest_of_line -> (
        incr flop_counter;
        let fname = Printf.sprintf "ff%d" !flop_counter in
        match rest_of_line with
        | [ d; q ] ->
          flops := Netlist.flop fname ~d ~q :: !flops;
          go rest
        | [ d; q; init ] ->
          let init =
            match init with
            | "0" -> Logic.V0
            | "1" -> Logic.V1
            | "2" | "3" -> Logic.VX
            | s -> blif_errorf "bad latch init %S" s
          in
          flops := Netlist.flop ~init fname ~d ~q :: !flops;
          go rest
        | _ -> blif_errorf "malformed .latch")
      | ".names" :: nets -> (
        match List.rev nets with
        | output :: rev_inputs ->
          let names_inputs = List.rev rev_inputs in
          (* consume cover rows until the next dot-directive *)
          let rec take_rows acc = function
            | row :: rest2
              when String.length row > 0 && row.[0] <> '.' -> (
              match words row with
              | [ pattern; out_value ] ->
                take_rows ((pattern, out_value) :: acc) rest2
              | [ out_value ] when names_inputs = [] ->
                take_rows (("", out_value) :: acc) rest2
              | _ -> blif_errorf "bad cover row %S" row)
            | rest2 -> (List.rev acc, rest2)
          in
          let rows, rest = take_rows [] rest in
          gates :=
            List.rev_append
              (translate_names fresh names_inputs output rows)
              !gates;
          go rest
        | [] -> blif_errorf ".names without nets")
      | [ ".end" ] -> ()
      | directive :: _ when String.length directive > 0 && directive.[0] = '.'
        ->
        blif_errorf "unsupported directive %S" directive
      | _ -> blif_errorf "unexpected line %S" line)
  in
  go lines;
  if !model = "" then blif_errorf "missing .model";
  Netlist.create ~name:!model ~flops:(List.rev !flops)
    ~primary_inputs:!inputs ~primary_outputs:!outputs (List.rev !gates)

let to_file path nl =
  let oc = open_out path in
  (try output_string oc (to_string nl)
   with e ->
     close_out oc;
     raise e);
  close_out oc

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
