(* The transistor-level view of a circuit (Fig. 7).

   Gates are first decomposed into inverting CMOS primitives (NOT,
   NAND, NOR), each of which expands into a complementary stage of
   devices.  Evaluation is genuine switch-level simulation: per stage,
   conducting paths through the pull-up and pull-down channel graphs
   decide the output, with X handled via strong/possible path analysis,
   so a logic-vs-transistor correspondence check exercises a different
   computational model than gate evaluation. *)

type device_type =
  | Nmos
  | Pmos

type device = {
  dname : string;
  dtype : device_type;
  gate_net : string;
  source : string;
  drain : string;
}

type stage = {
  out : string;
  devices : device list;
}

type t = {
  tname : string;
  inputs : string list;
  outputs : string list;
  stages : stage list;  (* in topological order of construction *)
}

exception Transistor_error of string

let vdd = "vdd!"
let gnd = "gnd!"

(* ------------------------------------------------------------------ *)
(* Decomposition into inverting primitives                             *)
(* ------------------------------------------------------------------ *)

type prim =
  | Pnot of string * string                  (* in, out *)
  | Pnand of string list * string
  | Pnor of string list * string

let decompose_gate fresh (g : Netlist.gate) =
  let out = g.Netlist.output in
  match (g.Netlist.op, g.Netlist.inputs) with
  | Logic.Not, [ a ] -> [ Pnot (a, out) ]
  | Logic.Buf, [ a ] ->
    let t = fresh () in
    [ Pnot (a, t); Pnot (t, out) ]
  | Logic.Nand, ins -> [ Pnand (ins, out) ]
  | Logic.Nor, ins -> [ Pnor (ins, out) ]
  | Logic.And, ins ->
    let t = fresh () in
    [ Pnand (ins, t); Pnot (t, out) ]
  | Logic.Or, ins ->
    let t = fresh () in
    [ Pnor (ins, t); Pnot (t, out) ]
  | Logic.Xor, ins | Logic.Xnor, ins ->
    (* fold binary XOR built from four NANDs:
       m = nand(a,b); x = nand(nand(a,m), nand(b,m)) *)
    let xor2 a b o =
      let m = fresh () and p = fresh () and q = fresh () in
      [ Pnand ([ a; b ], m); Pnand ([ a; m ], p); Pnand ([ b; m ], q);
        Pnand ([ p; q ], o) ]
    in
    let rec fold acc current = function
      | [] -> (acc, current)
      | b :: rest ->
        let o = if rest = [] && g.Netlist.op = Logic.Xor then out else fresh () in
        let acc = acc @ xor2 current b o in
        fold acc o rest
    in
    (match ins with
    | a :: b :: rest ->
      let acc, last = fold [] a (b :: rest) in
      if g.Netlist.op = Logic.Xor then acc
      else acc @ [ Pnot (last, out) ]
    | [ _ ] | [] -> raise (Transistor_error "xor arity"))
  | (Logic.Not | Logic.Buf), _ -> raise (Transistor_error "unary arity")

(* ------------------------------------------------------------------ *)
(* CMOS expansion of primitives                                        *)
(* ------------------------------------------------------------------ *)

let expand_prim fresh_node counter prim =
  let dev dtype gate_net source drain =
    incr counter;
    { dname = Printf.sprintf "m%d" !counter; dtype; gate_net; source; drain }
  in
  match prim with
  | Pnot (a, out) ->
    { out; devices = [ dev Pmos a vdd out; dev Nmos a out gnd ] }
  | Pnand (ins, out) ->
    (* parallel PMOS pull-up, series NMOS pull-down *)
    let pull_up = List.map (fun a -> dev Pmos a vdd out) ins in
    let rec series node = function
      | [] -> []
      | [ a ] -> [ dev Nmos a node gnd ]
      | a :: rest ->
        let mid = fresh_node () in
        dev Nmos a node mid :: series mid rest
    in
    { out; devices = pull_up @ series out ins }
  | Pnor (ins, out) ->
    (* series PMOS pull-up, parallel NMOS pull-down *)
    let rec series node = function
      | [] -> []
      | [ a ] -> [ dev Pmos a node out ]
      | a :: rest ->
        let mid = fresh_node () in
        dev Pmos a node mid :: series mid rest
    in
    let pull_down = List.map (fun a -> dev Nmos a out gnd) ins in
    { out; devices = series vdd ins @ pull_down }

let of_netlist nl =
  if Netlist.is_sequential nl then
    raise (Transistor_error "transistor expansion is combinational-only");
  let tmp = ref 0 in
  let fresh () =
    incr tmp;
    Printf.sprintf "tn%d" !tmp
  in
  let node = ref 0 in
  let fresh_node () =
    incr node;
    Printf.sprintf "ch%d" !node
  in
  let counter = ref 0 in
  let stages =
    Netlist.topological_gates nl
    |> List.concat_map (decompose_gate fresh)
    |> List.map (expand_prim fresh_node counter)
  in
  {
    tname = nl.Netlist.name ^ "_xtor";
    inputs = nl.Netlist.primary_inputs;
    outputs = nl.Netlist.primary_outputs;
    stages;
  }

let device_count t =
  List.fold_left (fun acc s -> acc + List.length s.devices) 0 t.stages

(* ------------------------------------------------------------------ *)
(* Switch-level evaluation                                             *)
(* ------------------------------------------------------------------ *)

(* Conduction of one device under known gate values.  [`On] definitely
   conducts, [`Off] definitely not, [`Maybe] unknown gate. *)
let conduction value d =
  match (d.dtype, value d.gate_net) with
  | Nmos, Logic.V1 | Pmos, Logic.V0 -> `On
  | Nmos, Logic.V0 | Pmos, Logic.V1 -> `Off
  | (Nmos | Pmos), Logic.VX -> `Maybe

(* Is there a path from [src] to [dst] through devices whose
   conduction is accepted by [admit]? *)
let path_exists devices ~admit ~src ~dst value =
  let adj = Hashtbl.create 16 in
  let add a b = Hashtbl.add adj a b in
  List.iter
    (fun d ->
      if admit (conduction value d) then begin
        add d.source d.drain;
        add d.drain d.source
      end)
    devices;
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> false
    | n :: rest ->
      if n = dst then true
      else if Hashtbl.mem seen n then go rest
      else begin
        Hashtbl.add seen n ();
        go (Hashtbl.find_all adj n @ rest)
      end
  in
  go [ src ]

let eval_stage value stage =
  let strong admit_x c = match c with `On -> true | `Maybe -> admit_x | `Off -> false in
  let strong_up =
    path_exists stage.devices ~admit:(strong false) ~src:vdd ~dst:stage.out value
  in
  let strong_down =
    path_exists stage.devices ~admit:(strong false) ~src:gnd ~dst:stage.out value
  in
  let possible_up =
    path_exists stage.devices ~admit:(strong true) ~src:vdd ~dst:stage.out value
  in
  let possible_down =
    path_exists stage.devices ~admit:(strong true) ~src:gnd ~dst:stage.out value
  in
  match (strong_up, strong_down, possible_up, possible_down) with
  | true, true, _, _ -> Logic.VX  (* short: complementary nets fought *)
  | true, false, _, false -> Logic.V1
  | false, true, false, _ -> Logic.V0
  | _, _, _, _ -> Logic.VX

let eval t env =
  let values = Hashtbl.create 64 in
  Hashtbl.replace values vdd Logic.V1;
  Hashtbl.replace values gnd Logic.V0;
  List.iter
    (fun n ->
      let v = try List.assoc n env with Not_found -> Logic.VX in
      Hashtbl.replace values n v)
    t.inputs;
  let value n = try Hashtbl.find values n with Not_found -> Logic.VX in
  List.iter
    (fun stage -> Hashtbl.replace values stage.out (eval_stage value stage))
    t.stages;
  List.map (fun o -> (o, value o)) t.outputs

(* ------------------------------------------------------------------ *)
(* Correspondence with the logic view                                  *)
(* ------------------------------------------------------------------ *)

(* Exhaustive for small circuits, random sampling above. *)
let corresponds ?(samples = 256) nl t rng =
  let n = List.length nl.Netlist.primary_inputs in
  let vectors =
    if n <= 10 then Stimuli.vectors (Stimuli.exhaustive nl.Netlist.primary_inputs)
    else
      Stimuli.vectors
        (Stimuli.random ~inputs:nl.Netlist.primary_inputs ~n:samples rng)
  in
  List.for_all
    (fun vec -> Netlist.eval nl vec = eval t vec)
    vectors

let hash t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.tname;
  List.iter
    (fun s ->
      Buffer.add_string buf ("|" ^ s.out);
      List.iter
        (fun d ->
          Buffer.add_string buf
            (Printf.sprintf ";%s:%s:%s:%s:%s" d.dname
               (match d.dtype with Nmos -> "n" | Pmos -> "p")
               d.gate_net d.source d.drain))
        s.devices)
    t.stages;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf t =
  Fmt.pf ppf "transistor view %s: %d devices in %d stages" t.tname
    (device_count t) (List.length t.stages)
