(* The extractor tool: recover a netlist from layout geometry.

   Connectivity is computed from the artwork only -- pins and wire
   segments joined at shared via points -- so the result reflects what
   the layout actually connects, not what the designer intended.  The
   extraction statistics are the co-produced second output of the same
   task invocation (Fig. 5). *)

type statistics = {
  source_layout : string;
  nets_extracted : int;
  cells_extracted : int;
  total_wirelength : int;
  estimated_cap_ff : float;     (* length-proportional parasitic load *)
  vias : int;
  die_area : int;
  opens : int;  (* floating pins promoted to ports; healthy layouts: 0 *)
}

exception Extract_error of string

let extract_errorf fmt = Format.kasprintf (fun s -> raise (Extract_error s)) fmt

(* Union-find over segment and pin indices. *)
module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else begin
    t.(i) <- find t t.(i);
    t.(i)
  end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(ra) <- rb
end

let run (l : Layout.t) =
  let segments = Array.of_list l.Layout.wires in
  let n_segs = Array.length segments in
  (* flatten pins with their owning cell *)
  let pins =
    List.concat_map
      (fun (c : Layout.cell) ->
        List.map (fun p -> (c, p)) c.Layout.pins)
      l.Layout.cells
    |> Array.of_list
  in
  let n_pins = Array.length pins in
  let uf = Uf.create (n_segs + n_pins) in
  (* index endpoints for near-linear connectivity *)
  let at_point = Hashtbl.create (2 * n_segs) in
  let note_endpoint idx (x, y) =
    let cur = try Hashtbl.find at_point (x, y) with Not_found -> [] in
    Hashtbl.replace at_point (x, y) (idx :: cur)
  in
  Array.iteri
    (fun i s ->
      note_endpoint i (s.Layout.x1, s.Layout.y1);
      note_endpoint i (s.Layout.x2, s.Layout.y2))
    segments;
  let vias = ref 0 in
  (* segments sharing an endpoint *)
  Hashtbl.iter
    (fun _ idxs ->
      match idxs with
      | [] | [ _ ] -> ()
      | first :: rest ->
        incr vias;
        List.iter (fun i -> Uf.union uf first i) rest)
    at_point;
  (* pins joining segments at their coordinates *)
  Array.iteri
    (fun pi (_, (p : Layout.pin)) ->
      match Hashtbl.find_opt at_point (p.Layout.px, p.Layout.py) with
      | Some (s :: _) -> Uf.union uf (n_segs + pi) s
      | Some [] | None -> ())
    pins;
  (* canonical net id per pin *)
  let net_names = Hashtbl.create 32 in
  let net_counter = ref 0 in
  let net_of_pin pi =
    let root = Uf.find uf (n_segs + pi) in
    match Hashtbl.find_opt net_names root with
    | Some n -> n
    | None ->
      incr net_counter;
      let n = Printf.sprintf "enet_%d" !net_counter in
      Hashtbl.add net_names root n;
      n
  in
  (* rebuild gates and ports *)
  let primary_inputs = ref [] and primary_outputs = ref [] in
  let renames = ref [] in
  let gates = ref [] in
  let counter = ref 0 in
  let pin_index = Hashtbl.create n_pins in
  Array.iteri
    (fun i ((c : Layout.cell), (p : Layout.pin)) ->
      Hashtbl.replace pin_index (c.Layout.cname, p.Layout.pname) i)
    pins;
  let pin_net (c : Layout.cell) pname =
    match Hashtbl.find_opt pin_index (c.Layout.cname, pname) with
    | Some i -> net_of_pin i
    | None -> extract_errorf "cell %s has no pin %s" c.Layout.cname pname
  in
  List.iter
    (fun (c : Layout.cell) ->
      match c.Layout.kind with
      | Layout.Input_pad port ->
        let net = pin_net c "pad" in
        primary_inputs := net :: !primary_inputs;
        renames := (net, port) :: !renames
      | Layout.Output_pad port ->
        let net = pin_net c "pad" in
        primary_outputs := net :: !primary_outputs;
        renames := (net, port) :: !renames
      | Layout.Gate_cell (op, drive) ->
        incr counter;
        let n_inputs =
          List.length
            (List.filter
               (fun (p : Layout.pin) -> p.Layout.pname <> "out")
               c.Layout.pins)
        in
        let inputs =
          List.init n_inputs (fun i -> pin_net c (Printf.sprintf "in%d" i))
        in
        let output = pin_net c "out" in
        gates := Netlist.gate ~drive (Printf.sprintf "x%d" !counter) op inputs output :: !gates)
    l.Layout.cells;
  (* ports keep their pad labels, as real extractors honour text labels *)
  let rename n = try List.assoc n !renames with Not_found -> n in
  let gates =
    List.rev_map
      (fun (g : Netlist.gate) ->
        { g with
          Netlist.inputs = List.map rename g.Netlist.inputs;
          Netlist.output = rename g.Netlist.output })
      !gates
  in
  (* Floating nets (a pin no longer touching its wire after a careless
     edit) are promoted to input ports and reported as opens, as a real
     extractor reports connectivity violations rather than dying. *)
  let primary_inputs = List.rev_map rename !primary_inputs in
  let primary_outputs = List.rev_map rename !primary_outputs in
  let driven = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace driven n ()) primary_inputs;
  List.iter
    (fun (g : Netlist.gate) -> Hashtbl.replace driven g.Netlist.output ())
    gates;
  let floating = Hashtbl.create 8 in
  let note_floating n =
    if not (Hashtbl.mem driven n) then Hashtbl.replace floating n ()
  in
  List.iter
    (fun (g : Netlist.gate) -> List.iter note_floating g.Netlist.inputs)
    gates;
  List.iter note_floating primary_outputs;
  let opens = Hashtbl.length floating in
  let primary_inputs =
    primary_inputs @ (Hashtbl.fold (fun n () acc -> n :: acc) floating []
                      |> List.sort compare)
  in
  let netlist =
    Netlist.create
      ~name:(l.Layout.layout_name ^ "_extracted")
      ~primary_inputs ~primary_outputs gates
  in
  let wirelength = Layout.wirelength l in
  let statistics = {
    source_layout = l.Layout.layout_name;
    nets_extracted = Netlist.net_count netlist;
    cells_extracted = List.length l.Layout.cells;
    total_wirelength = wirelength;
    estimated_cap_ff = 0.2 *. float_of_int wirelength;
    vias = !vias;
    die_area = Layout.area l;
    opens;
  }
  in
  (netlist, statistics)

let statistics_hash s =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%d|%d|%f|%d|%d|%d" s.source_layout
          s.nets_extracted s.cells_extracted s.total_wirelength
          s.estimated_cap_ff s.vias s.die_area s.opens))

let pp_statistics ppf s =
  Fmt.pf ppf
    "extraction of %s: %d nets, %d cells, wirelength %d (%.1f fF), %d vias, area %d%s"
    s.source_layout s.nets_extracted s.cells_extracted s.total_wirelength
    s.estimated_cap_ff s.vias s.die_area
    (if s.opens = 0 then "" else Printf.sprintf ", %d OPENS" s.opens)
