(** Performance analysis: the design object produced by the simulator
    tool — static timing plus activity-based power from a simulation
    run. *)

type t = {
  circuit_name : string;
  model_name : string;
  critical_path_ps : int;
  total_switching : int;
  dynamic_power : float;       (** energy units per vector *)
  vectors_simulated : int;
  gate_count : int;
  output_signature : string;   (** digest of the output responses *)
}

type path_step = {
  ps_net : string;
  ps_arrival_ps : int;
  ps_gate : string option;  (** [None] at a timing start point *)
}

val critical_path : ?model:Device_model.t -> Netlist.t -> int
(** Longest weighted path from any start point (primary input or flop
    output) to any end point (primary output or flop input). *)

val critical_path_report : ?model:Device_model.t -> Netlist.t -> path_step list
(** The worst path itself, start point first. *)

val pp_path : Format.formatter -> path_step list -> unit

val dynamic_power : model:Device_model.t -> Netlist.t -> Waveform.t -> float
(** Switching events weighted by gate energy. *)

val output_signature : Netlist.t -> Waveform.t -> Stimuli.t -> string
(** Digest of the sampled output responses, one sample per vector. *)

val analyze : ?model:Device_model.t -> Netlist.t -> Stimuli.t -> t
(** The full simulator-tool behaviour: event-driven run + analysis. *)

val of_compiled_run :
  Sim_compiled.t -> (string * Logic.value) list list -> model_name:string -> t
(** Summary of a compiled-simulation run (Fig. 2): functional outputs
    only, no waveform-derived metrics. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
