(** Standard-cell layout: the physical view of Fig. 7.

    [place] is the placer tool: levelized row placement with
    per-channel trunk routing.  Connectivity lives only in the geometry
    (pins and wire segments joined at shared via points), so extraction
    genuinely recovers the netlist from coordinates, and an edit that
    moves a cell without rerouting genuinely breaks LVS. *)

type pin = {
  pname : string;
  px : int;
  py : int;
}

type cell_kind =
  | Gate_cell of Logic.gate_op * int  (** operator, drive *)
  | Input_pad of string               (** primary-input port *)
  | Output_pad of string

type cell = {
  cname : string;
  kind : cell_kind;
  x : int;
  y : int;
  width : int;
  height : int;
  pins : pin list;
}

type segment = private {
  x1 : int;
  y1 : int;
  x2 : int;
  y2 : int;
}

type t = {
  layout_name : string;
  cells : cell list;
  wires : segment list;
  die_width : int;
  die_height : int;
}

exception Layout_error of string

val cell_height : int
val pad_size : int
val cell_width : n_inputs:int -> int

val segment : int -> int -> int -> int -> segment
(** Normalized axis-parallel segment.
    @raise Layout_error on a diagonal. *)

val segment_length : segment -> int
val on_segment : segment -> int * int -> bool
val is_endpoint : segment -> int * int -> bool

val segments_touch : segment -> segment -> bool
(** Via-style connectivity: only shared endpoints connect; crossings
    and T junctions without a via do not. *)

val pin_on_segment : pin -> segment -> bool

val place : ?name_suffix:string -> Netlist.t -> t
(** The placer tool: rows by logic level, pads at the die edges, one
    private trunk track per net, one vertical per pin. *)

(** {1 Metrics} *)

val area : t -> int
val cell_count : t -> int
val wirelength : t -> int
val gate_cells : t -> cell list

(** {1 Edits (the layout-editor tool)} *)

type edit =
  | Move_cell of string * int * int
      (** moves the cell and its pins; does NOT reroute *)
  | Delete_cell of string
  | Rename_layout of string
  | Add_segment of segment
  | Delete_segment of segment

val find_cell : t -> string -> cell option
val apply_edit : t -> edit -> t
val apply_edits : t -> edit list -> t

val hash : t -> string
val pp : Format.formatter -> t -> unit
