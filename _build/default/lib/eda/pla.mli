(** The PLA generator tool: re-implement a logic function as a
    programmable logic array (the standard-cell-to-PLA scenario of the
    paper's section 2).

    The truth table is lifted by exhaustive compiled simulation; the
    AND plane is minimized by iterated cube merging with a greedy
    essential-first cover (a light Quine-McCluskey); identical product
    terms are shared across outputs. *)

type literal =
  | L_true
  | L_false
  | L_dash

type cube = literal array

type t = {
  pla_name : string;
  inputs : string list;
  outputs : string list;
  and_plane : cube list;
  or_plane : bool array list;
}

exception Pla_error of string

val max_inputs : int

(** {1 Truth tables} *)

type truth_table = {
  tt_inputs : string list;
  tt_outputs : string list;
  tt_rows : bool array array;
}

val truth_table : Netlist.t -> truth_table
(** @raise Pla_error beyond {!max_inputs} inputs or on X outputs. *)

(** {1 Cube algebra} *)

val cube_of_minterm : int -> int -> cube
val cube_covers : cube -> int -> bool
val try_merge : cube -> cube -> cube option
val cube_key : cube -> string

(** {1 Synthesis} *)

val of_truth_table : ?name:string -> truth_table -> t
val of_netlist : Netlist.t -> t
val product_terms : t -> int

val to_netlist : t -> Netlist.t
(** Two-level AND-OR lowering with on-demand inverted input rails. *)

val to_layout : t -> Layout.t

val equivalent : Netlist.t -> t -> bool
(** Does the PLA compute exactly the source's truth table? *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
