(* The PLA generator tool: re-implement a logic function as a
   programmable logic array (the standard-cell-to-PLA scenario the
   paper borrows from Chiueh & Katz, section 2).

   A truth table is lifted from the source netlist by exhaustive
   compiled simulation; the AND plane is minimized by iterated cube
   merging with a greedy essential-first cover (a light
   Quine-McCluskey); [to_netlist] lowers the planes back to two-level
   logic so the result can be verified against the original. *)

type literal =
  | L_true      (* input must be 1 *)
  | L_false     (* input must be 0 *)
  | L_dash      (* input irrelevant *)

type cube = literal array

type t = {
  pla_name : string;
  inputs : string list;
  outputs : string list;
  and_plane : cube list;
  or_plane : bool array list;  (* per product term: which outputs use it *)
}

exception Pla_error of string

let max_inputs = 14

(* ------------------------------------------------------------------ *)
(* Truth table                                                         *)
(* ------------------------------------------------------------------ *)

type truth_table = {
  tt_inputs : string list;
  tt_outputs : string list;
  (* row index = input assignment, LSB = first input *)
  tt_rows : bool array array;  (* [row].(output index) *)
}

let truth_table nl =
  if Netlist.is_sequential nl then
    raise (Pla_error "PLA synthesis is combinational-only");
  let n = List.length nl.Netlist.primary_inputs in
  if n > max_inputs then
    raise (Pla_error (Printf.sprintf "PLA limited to %d inputs" max_inputs));
  let compiled = Sim_compiled.compile nl in
  let stimuli = Stimuli.exhaustive nl.Netlist.primary_inputs in
  let responses = Sim_compiled.run compiled stimuli in
  let row resp =
    Array.of_list
      (List.map
         (fun (_, v) ->
           match Logic.to_bool v with
           | Some b -> b
           | None -> raise (Pla_error "X in truth table"))
         resp)
  in
  {
    tt_inputs = nl.Netlist.primary_inputs;
    tt_outputs = nl.Netlist.primary_outputs;
    tt_rows = Array.of_list (List.map row responses);
  }

(* ------------------------------------------------------------------ *)
(* Cube algebra                                                        *)
(* ------------------------------------------------------------------ *)

let cube_of_minterm n k =
  Array.init n (fun i -> if (k lsr i) land 1 = 1 then L_true else L_false)

let cube_covers cube k =
  let ok = ref true in
  Array.iteri
    (fun i lit ->
      let bit = (k lsr i) land 1 = 1 in
      match lit with
      | L_true -> if not bit then ok := false
      | L_false -> if bit then ok := false
      | L_dash -> ())
    cube;
  !ok

(* Merge two cubes differing in exactly one specified literal. *)
let try_merge a b =
  let n = Array.length a in
  let diff = ref 0 and pos = ref (-1) in
  (try
     for i = 0 to n - 1 do
       if a.(i) <> b.(i) then begin
         (match (a.(i), b.(i)) with
         | L_true, L_false | L_false, L_true ->
           incr diff;
           pos := i
         | L_dash, _ | _, L_dash -> raise Exit
         | (L_true | L_false), _ -> assert false);
         if !diff > 1 then raise Exit
       end
     done
   with Exit -> diff := 2);
  if !diff = 1 then begin
    let merged = Array.copy a in
    merged.(!pos) <- L_dash;
    Some merged
  end
  else None

let cube_key c =
  String.init (Array.length c) (fun i ->
      match c.(i) with L_true -> '1' | L_false -> '0' | L_dash -> '-')

(* Iterated merging until fixpoint: the prime-ish implicants. *)
let merge_pass cubes =
  let arr = Array.of_list cubes in
  let n = Array.length arr in
  let used = Array.make n false in
  let out = Hashtbl.create 64 in
  let progressed = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match try_merge arr.(i) arr.(j) with
      | Some m ->
        used.(i) <- true;
        used.(j) <- true;
        progressed := true;
        Hashtbl.replace out (cube_key m) m
      | None -> ()
    done
  done;
  for i = 0 to n - 1 do
    if not used.(i) then Hashtbl.replace out (cube_key arr.(i)) arr.(i)
  done;
  let merged = Hashtbl.fold (fun _ c acc -> c :: acc) out [] in
  (merged, !progressed)

let rec merge_to_fixpoint cubes =
  let merged, progressed = merge_pass cubes in
  if progressed then merge_to_fixpoint merged else merged

(* Greedy cover: repeatedly take the implicant covering the most
   still-uncovered minterms. *)
let greedy_cover implicants minterms =
  let remaining = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace remaining k ()) minterms;
  let chosen = ref [] in
  let count_covered c =
    Hashtbl.fold (fun k () acc -> if cube_covers c k then acc + 1 else acc)
      remaining 0
  in
  while Hashtbl.length remaining > 0 do
    let best =
      List.fold_left
        (fun best c ->
          let n = count_covered c in
          match best with
          | Some (_, bn) when bn >= n -> best
          | Some _ | None -> if n > 0 then Some (c, n) else best)
        None implicants
    in
    match best with
    | None -> raise (Pla_error "cover failure")
    | Some (c, _) ->
      chosen := c :: !chosen;
      Hashtbl.iter
        (fun k () -> if cube_covers c k then Hashtbl.remove remaining k)
        (Hashtbl.copy remaining)
  done;
  List.rev !chosen

(* ------------------------------------------------------------------ *)
(* PLA synthesis                                                       *)
(* ------------------------------------------------------------------ *)

let of_truth_table ?(name = "pla") tt =
  let n = List.length tt.tt_inputs in
  let n_out = List.length tt.tt_outputs in
  (* per-output minimized covers *)
  let covers =
    List.init n_out (fun o ->
        let minterms =
          List.filter (fun k -> tt.tt_rows.(k).(o))
            (List.init (Array.length tt.tt_rows) Fun.id)
        in
        if minterms = [] then []
        else
          let primes =
            merge_to_fixpoint (List.map (cube_of_minterm n) minterms)
          in
          greedy_cover primes minterms)
  in
  (* share identical product terms across outputs *)
  let terms = Hashtbl.create 64 in
  let order = ref [] in
  List.iteri
    (fun o cover ->
      List.iter
        (fun c ->
          let key = cube_key c in
          (match Hashtbl.find_opt terms key with
          | Some (_, outs) -> outs.(o) <- true
          | None ->
            let outs = Array.make n_out false in
            outs.(o) <- true;
            order := key :: !order;
            Hashtbl.add terms key (c, outs)))
        cover)
    covers;
  let keys = List.rev !order in
  {
    pla_name = name;
    inputs = tt.tt_inputs;
    outputs = tt.tt_outputs;
    and_plane = List.map (fun k -> fst (Hashtbl.find terms k)) keys;
    or_plane = List.map (fun k -> snd (Hashtbl.find terms k)) keys;
  }

let of_netlist nl =
  of_truth_table ~name:(nl.Netlist.name ^ "_pla") (truth_table nl)

let product_terms p = List.length p.and_plane

(* ------------------------------------------------------------------ *)
(* Lowering back to a netlist (two-level AND-OR with input inverters)  *)
(* ------------------------------------------------------------------ *)

let to_netlist p =
  let n = List.length p.inputs in
  let input_arr = Array.of_list p.inputs in
  let gates = ref [] in
  let emit g = gates := g :: !gates in
  (* inverted input rails, created on demand *)
  let inverted = Hashtbl.create 8 in
  let rail_false i =
    let base = input_arr.(i) in
    match Hashtbl.find_opt inverted i with
    | Some net -> net
    | None ->
      let net = Printf.sprintf "nbar_%s" base in
      emit (Netlist.gate (Printf.sprintf "ginv_%s" base) Logic.Not [ base ] net);
      Hashtbl.add inverted i net;
      net
  in
  let term_nets =
    List.mapi
      (fun ti cube ->
        let literals =
          List.filter_map
            (fun i ->
              match cube.(i) with
              | L_true -> Some input_arr.(i)
              | L_false -> Some (rail_false i)
              | L_dash -> None)
            (List.init n Fun.id)
        in
        match literals with
        | [] ->
          (* tautological term: a constant-1; model it as a = or(x, not x) *)
          let net = Printf.sprintf "term%d" ti in
          let x = input_arr.(0) in
          emit (Netlist.gate (Printf.sprintf "gterm%d" ti) Logic.Or
                  [ x; rail_false 0 ] net);
          net
        | [ single ] -> single
        | many ->
          let net = Printf.sprintf "term%d" ti in
          emit (Netlist.gate (Printf.sprintf "gterm%d" ti) Logic.And many net);
          net)
      p.and_plane
  in
  let term_arr = Array.of_list term_nets in
  List.iteri
    (fun o out ->
      let terms =
        List.filter_map
          (fun ti ->
            let outs = List.nth p.or_plane ti in
            if outs.(o) then Some term_arr.(ti) else None)
          (List.init (List.length p.or_plane) Fun.id)
      in
      match terms with
      | [] ->
        (* constant-0 output: and(x, not x) *)
        let x = input_arr.(0) in
        emit (Netlist.gate (Printf.sprintf "gzero_%s" out) Logic.And
                [ x; rail_false 0 ] out)
      | [ single ] ->
        emit (Netlist.gate (Printf.sprintf "gor_%s" out) Logic.Buf [ single ] out)
      | many ->
        emit (Netlist.gate (Printf.sprintf "gor_%s" out) Logic.Or many out))
    p.outputs;
  Netlist.create ~name:p.pla_name ~primary_inputs:p.inputs
    ~primary_outputs:p.outputs (List.rev !gates)

(* The pla_generator tool behaviour: netlist -> PLA -> placed layout. *)
let to_layout p = Layout.place ~name_suffix:"_pla_layout" (to_netlist p)

(* Functional check: the PLA re-implementation matches the original. *)
let equivalent nl p =
  let tt = truth_table nl in
  let pla_nl = to_netlist p in
  let compiled = Sim_compiled.compile pla_nl in
  let stimuli = Stimuli.exhaustive nl.Netlist.primary_inputs in
  let responses = Sim_compiled.run compiled stimuli in
  List.for_all2
    (fun resp k ->
      List.for_all2
        (fun (_, v) o -> Logic.to_bool v = Some tt.tt_rows.(k).(o))
        resp
        (List.init (List.length p.outputs) Fun.id))
    responses
    (List.init (Array.length tt.tt_rows) Fun.id)

let hash p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf p.pla_name;
  List.iter (fun c -> Buffer.add_string buf ("|" ^ cube_key c)) p.and_plane;
  List.iter
    (fun outs ->
      Buffer.add_char buf '|';
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) outs)
    p.or_plane;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf p =
  Fmt.pf ppf "PLA %s: %d inputs, %d outputs, %d product terms" p.pla_name
    (List.length p.inputs) (List.length p.outputs) (product_terms p)
