(* Hierarchical designs: a netlist of cell instances.

   Section 3.1 notes that "more complicated notions of design
   decomposition (such as a hierarchy of cells within a design)" live
   above the task level; this module provides that hierarchy for the
   substrate: cell definitions, an instance-based top level, and
   flattening into a plain netlist for the tools that need one. *)

type instance = {
  inst_name : string;
  cell : string;                        (* cell definition name *)
  connections : (string * string) list; (* cell port -> top-level net *)
}

type t = {
  design_name : string;
  cells : (string * Netlist.t) list;    (* definitions, by name *)
  top_inputs : string list;
  top_outputs : string list;
  instances : instance list;
  glue : Netlist.gate list;              (* optional top-level gates *)
}

exception Hier_error of string

let hier_errorf fmt = Format.kasprintf (fun s -> raise (Hier_error s)) fmt

let find_cell h name =
  match List.assoc_opt name h.cells with
  | Some nl -> nl
  | None -> hier_errorf "no cell definition %S" name

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate h =
  if h.design_name = "" then hier_errorf "design name must be non-empty";
  let seen_cells = Hashtbl.create 8 in
  List.iter
    (fun (name, nl) ->
      if Hashtbl.mem seen_cells name then
        hier_errorf "duplicate cell definition %S" name;
      Hashtbl.add seen_cells name ();
      Netlist.validate nl)
    h.cells;
  let seen_inst = Hashtbl.create 8 in
  (* net -> is it driven (by an instance output, glue gate or PI)? *)
  let drivers = Hashtbl.create 16 in
  let note_driver net what =
    if Hashtbl.mem drivers net then
      hier_errorf "net %s has several drivers (%s)" net what
    else Hashtbl.add drivers net what
  in
  List.iter (fun n -> note_driver n "primary input") h.top_inputs;
  List.iter
    (fun (g : Netlist.gate) -> note_driver g.Netlist.output "glue gate")
    h.glue;
  List.iter
    (fun inst ->
      if Hashtbl.mem seen_inst inst.inst_name then
        hier_errorf "duplicate instance %S" inst.inst_name;
      Hashtbl.add seen_inst inst.inst_name ();
      let cell = find_cell h inst.cell in
      let ports =
        cell.Netlist.primary_inputs @ cell.Netlist.primary_outputs
      in
      List.iter
        (fun (port, _) ->
          if not (List.mem port ports) then
            hier_errorf "instance %s: cell %s has no port %S" inst.inst_name
              inst.cell port)
        inst.connections;
      (* every cell input must be connected *)
      List.iter
        (fun port ->
          if not (List.mem_assoc port inst.connections) then
            hier_errorf "instance %s: input port %S unconnected" inst.inst_name
              port)
        cell.Netlist.primary_inputs;
      (* connected outputs drive their nets *)
      List.iter
        (fun port ->
          match List.assoc_opt port inst.connections with
          | Some net -> note_driver net (inst.inst_name ^ "." ^ port)
          | None -> ())
        cell.Netlist.primary_outputs)
    h.instances;
  (* every consumed net must be driven *)
  let require_driven net what =
    if not (Hashtbl.mem drivers net) then
      hier_errorf "net %s (%s) is undriven" net what
  in
  List.iter (fun n -> require_driven n "primary output") h.top_outputs;
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter (fun n -> require_driven n ("input of " ^ g.Netlist.gname)) g.Netlist.inputs)
    h.glue;
  List.iter
    (fun inst ->
      let cell = find_cell h inst.cell in
      List.iter
        (fun port ->
          match List.assoc_opt port inst.connections with
          | Some net -> require_driven net (inst.inst_name ^ "." ^ port)
          | None -> ())
        cell.Netlist.primary_inputs)
    h.instances

let create ~design_name ~cells ~top_inputs ~top_outputs ?(glue = []) instances =
  let h = { design_name; cells; top_inputs; top_outputs; instances; glue } in
  validate h;
  h

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let instance_count h = List.length h.instances
let cell_names h = List.map fst h.cells

let cells_used h =
  List.map (fun i -> i.cell) h.instances |> List.sort_uniq compare

let gate_count h =
  List.fold_left
    (fun acc inst -> acc + Netlist.gate_count (find_cell h inst.cell))
    (List.length h.glue) h.instances

(* ------------------------------------------------------------------ *)
(* Flattening                                                          *)
(* ------------------------------------------------------------------ *)

(* Expand every instance: cell-internal nets and gate names are
   prefixed with the instance name; port nets map to their connected
   top-level nets; unconnected cell outputs become dangling internal
   nets (legal: unread). *)
let flatten h =
  let gates = ref (List.rev h.glue) in
  let flops = ref [] in
  List.iter
    (fun inst ->
      let cell = find_cell h inst.cell in
      let rename net =
        match List.assoc_opt net inst.connections with
        | Some top_net -> top_net
        | None ->
          if
            List.mem net cell.Netlist.primary_inputs
            || List.mem net cell.Netlist.primary_outputs
          then inst.inst_name ^ "." ^ net  (* unconnected port *)
          else inst.inst_name ^ "." ^ net
      in
      List.iter
        (fun (g : Netlist.gate) ->
          gates :=
            {
              g with
              Netlist.gname = inst.inst_name ^ "." ^ g.Netlist.gname;
              Netlist.inputs = List.map rename g.Netlist.inputs;
              Netlist.output = rename g.Netlist.output;
            }
            :: !gates)
        cell.Netlist.gates;
      List.iter
        (fun (f : Netlist.flop) ->
          flops :=
            {
              f with
              Netlist.fname = inst.inst_name ^ "." ^ f.Netlist.fname;
              Netlist.d = rename f.Netlist.d;
              Netlist.q = rename f.Netlist.q;
            }
            :: !flops)
        cell.Netlist.flops)
    h.instances;
  Netlist.create ~name:(h.design_name ^ "_flat")
    ~flops:(List.rev !flops)
    ~primary_inputs:h.top_inputs ~primary_outputs:h.top_outputs
    (List.rev !gates)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)
(* ------------------------------------------------------------------ *)

(* An n-bit adder assembled from full-adder cell instances: the classic
   decomposition example. *)
let adder_of_cells n =
  if n < 1 then invalid_arg "Hier.adder_of_cells";
  let fa = Circuits.full_adder () in
  let a i = Printf.sprintf "a%d" i
  and b i = Printf.sprintf "b%d" i
  and s i = Printf.sprintf "s%d" i
  and c i = Printf.sprintf "carry%d" i in
  let instances =
    List.init n (fun i ->
        {
          inst_name = Printf.sprintf "fa%d" i;
          cell = "full_adder";
          connections =
            [
              ("a", a i); ("b", b i); ("cin", if i = 0 then "cin" else c (i - 1));
              ("sum", s i); ("cout", c i);
            ];
        })
  in
  create
    ~design_name:(Printf.sprintf "hier_adder%d" n)
    ~cells:[ ("full_adder", fa) ]
    ~top_inputs:
      ("cin" :: List.concat_map (fun i -> [ a i; b i ]) (List.init n Fun.id))
    ~top_outputs:(List.init n s @ [ c (n - 1) ])
    instances

let hash h = Netlist.hash (flatten h)

let pp ppf h =
  Fmt.pf ppf "design %s: %d instances over %d cells (%d gates flat)"
    h.design_name (instance_count h)
    (List.length (cells_used h))
    (gate_count h)
