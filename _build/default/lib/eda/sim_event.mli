(** Event-driven gate-level simulation (selective trace).

    Input changes are scheduled at vector boundaries; a gate whose
    input changed is evaluated and, when its projected output differs,
    a new event is scheduled after the gate's delay under the active
    device model.  The result is a full waveform, including hazard
    pulses, from which the performance analysis derives power. *)

type stats = {
  events_processed : int;
  gate_evaluations : int;
}

type result = {
  waveform : Waveform.t;
  stats : stats;
}

exception Simulation_error of string

val run :
  ?model:Device_model.t -> ?settle_ps:int -> Netlist.t -> Stimuli.t -> result
(** Simulate all stimulus vectors; [settle_ps] extends the horizon past
    the last vector.  @raise Simulation_error if activity persists far
    beyond the horizon (oscillation). *)

val final_outputs : result -> Netlist.t -> (string * Logic.value) list
(** Steady-state primary-output values after the final vector; these
    agree with {!Netlist.eval} on the last vector (tested property). *)
