(** Hierarchical designs: a top level of cell instances over a library
    of cell definitions, with flattening into a plain netlist.

    This is the "hierarchy of cells within a design" that section 3.1
    places above the task level; the design-process manager
    ({!Ddf_process}) tracks per-cell progress over it. *)

type instance = {
  inst_name : string;
  cell : string;
  connections : (string * string) list;  (** cell port -> top-level net *)
}

type t = private {
  design_name : string;
  cells : (string * Netlist.t) list;
  top_inputs : string list;
  top_outputs : string list;
  instances : instance list;
  glue : Netlist.gate list;
}

exception Hier_error of string

val create :
  design_name:string -> cells:(string * Netlist.t) list ->
  top_inputs:string list -> top_outputs:string list ->
  ?glue:Netlist.gate list -> instance list -> t
(** Validates: unique cell and instance names, known ports, every cell
    input connected, single driver per top-level net, every consumed
    net driven. @raise Hier_error on violation. *)

val validate : t -> unit
val find_cell : t -> string -> Netlist.t
val instance_count : t -> int
val cell_names : t -> string list
val cells_used : t -> string list
val gate_count : t -> int

val flatten : t -> Netlist.t
(** Expand every instance; internal nets and gate names are prefixed
    with the instance name. *)

val adder_of_cells : int -> t
(** An n-bit adder assembled from full-adder cell instances. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
