(* Statistical circuit optimizers over gate drive strengths.

   Three tools with the same input and output types, so all three share
   one encapsulation (the paper's section 3.3 sharing example): random
   search, greedy hill climbing and simulated annealing, each seeking
   drive assignments minimizing a delay/power trade-off. *)

type objective = {
  delay_weight : float;
  power_weight : float;
}

let default_objective = { delay_weight = 1.0; power_weight = 0.5 }

type report = {
  strategy : string;
  initial_cost : float;
  final_cost : float;
  evaluations : int;
}

type strategy =
  | Random_search
  | Hill_climb
  | Annealing

let strategy_name = function
  | Random_search -> "random_search"
  | Hill_climb -> "hill_climb"
  | Annealing -> "annealing"

let all_strategies = [ Random_search; Hill_climb; Annealing ]

(* Static cost: critical path plus total gate energy under the default
   model, weighted by the objective. *)
let cost ?(model = Device_model.default) obj nl =
  let delay = float_of_int (Performance.critical_path ~model nl) in
  let power =
    List.fold_left
      (fun acc g -> acc +. Device_model.gate_energy model g)
      0.0 nl.Netlist.gates
  in
  (obj.delay_weight *. delay) +. (obj.power_weight *. power)

let gate_names nl = List.map (fun (g : Netlist.gate) -> g.Netlist.gname) nl.Netlist.gates

let random_neighbor rng nl =
  match gate_names nl with
  | [] -> nl
  | names ->
    let gname = Rng.pick rng names in
    let drive = Rng.pick rng [ 1; 2; 4 ] in
    Netlist.set_drive nl gname drive

(* Activity-aware cost: switching counts (e.g. measured by a compiled
   simulator passed to the optimizer as data) weigh each gate's energy,
   instead of assuming uniform activity. *)
let cost_with_activity ?(model = Device_model.default) obj ~activity nl =
  let delay = float_of_int (Performance.critical_path ~model nl) in
  let power =
    List.fold_left
      (fun acc (g : Netlist.gate) ->
        acc
        +. Device_model.gate_energy model g
           *. float_of_int (1 + activity g.Netlist.output))
      0.0 nl.Netlist.gates
  in
  (obj.delay_weight *. delay) +. (obj.power_weight *. power)

let run ?(budget = 200) ?(objective = default_objective) ?cost:cost_fn strategy
    nl rng =
  let cost_fn =
    match cost_fn with Some f -> f | None -> cost objective
  in
  let evaluations = ref 0 in
  let eval nl =
    incr evaluations;
    cost_fn nl
  in
  let initial_cost = eval nl in
  let best = ref nl and best_cost = ref initial_cost in
  (match strategy with
  | Random_search ->
    (* independent random full assignments *)
    let names = gate_names nl in
    for _ = 1 to budget do
      let cand =
        List.fold_left
          (fun acc gname -> Netlist.set_drive acc gname (Rng.pick rng [ 1; 2; 4 ]))
          nl names
      in
      let c = eval cand in
      if c < !best_cost then begin
        best := cand;
        best_cost := c
      end
    done
  | Hill_climb ->
    let current = ref nl and current_cost = ref initial_cost in
    for _ = 1 to budget do
      let cand = random_neighbor rng !current in
      let c = eval cand in
      if c < !current_cost then begin
        current := cand;
        current_cost := c
      end
    done;
    best := !current;
    best_cost := !current_cost
  | Annealing ->
    let current = ref nl and current_cost = ref initial_cost in
    let t0 = 0.1 *. initial_cost in
    for step = 1 to budget do
      let temp = t0 *. (1.0 -. (float_of_int step /. float_of_int (budget + 1))) in
      let cand = random_neighbor rng !current in
      let c = eval cand in
      let accept =
        c < !current_cost
        || (temp > 0.0 && Rng.float rng < exp ((!current_cost -. c) /. temp))
      in
      if accept then begin
        current := cand;
        current_cost := c
      end;
      if c < !best_cost then begin
        best := cand;
        best_cost := c
      end
    done);
  let optimized = Netlist.rename !best (nl.Netlist.name ^ "_opt") in
  ( optimized,
    {
      strategy = strategy_name strategy;
      initial_cost;
      final_cost = !best_cost;
      evaluations = !evaluations;
    } )

let report_hash r =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%f|%f|%d" r.strategy r.initial_cost r.final_cost
          r.evaluations))

let pp_report ppf r =
  Fmt.pf ppf "%s: %.1f -> %.1f in %d evaluations" r.strategy r.initial_cost
    r.final_cost r.evaluations
