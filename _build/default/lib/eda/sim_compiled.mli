(** Levelized compiled-code simulation, in the manner of COSMOS
    (the paper's Fig. 2 example of a tool created during design).

    [compile] lowers a netlist to a flat instruction program over
    integer-indexed nets; each [run_vector] is then one linear pass.
    The compile/run cost asymmetry against {!Sim_event} is measured by
    experiment E2. *)

type instr = private {
  op : Logic.gate_op;
  args : int array;
  dst : int;
}

type t = private {
  source_name : string;
  source_hash : string;
  net_index : (string * int) list;
  n_nets : int;
  program : instr array;
  input_slots : (string * int) list;
  output_slots : (string * int) list;
  flop_slots : (int * int * Logic.value) list;
      (** per flop: (d slot, q slot, initial value) *)
}

exception Compile_error of string

val compile : Netlist.t -> t
val instruction_count : t -> int

val initial_state : t -> Logic.value list

val cycle :
  t -> Logic.value list -> Stimuli.vector ->
  (string * Logic.value) list * Logic.value list
(** One clock cycle under a flop state: outputs and next state. *)

val run_vector : t -> Stimuli.vector -> (string * Logic.value) list
(** Steady-state outputs for one vector, from reset (zero-delay). *)

val run : t -> Stimuli.t -> (string * Logic.value) list list
(** One response list per stimulus vector; for sequential designs the
    flop state threads across vectors (one clock edge per vector). *)

val run_trace : t -> Stimuli.t -> (string * int) list
(** Per-net toggle counts across consecutive vectors: the activity
    profile used when the compiled simulator is passed as data to the
    optimizer (section 3.3). *)

val rebuild :
  ?flop_slots:(int * int * Logic.value) list ->
  source_name:string -> source_hash:string -> net_index:(string * int) list ->
  n_nets:int -> program:(Logic.gate_op * int array * int) list ->
  input_slots:(string * int) list -> output_slots:(string * int) list ->
  unit -> t
(** Reassemble a compiled simulator from persisted parts, revalidating
    slot bounds and arities. @raise Compile_error on violation. *)

val hash : t -> string
