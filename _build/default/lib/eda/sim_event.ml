(* Event-driven gate-level simulation.

   A classic selective-trace simulator: input changes are scheduled at
   vector boundaries; a gate whose input changed is evaluated and, when
   its output differs, a new event is scheduled after the gate's delay
   under the active device model.  The result is a full waveform, from
   which the performance analysis derives timing and power. *)

type stats = {
  events_processed : int;
  gate_evaluations : int;
}

type result = {
  waveform : Waveform.t;
  stats : stats;
}

exception Simulation_error of string

(* Pending events keyed by (time, sequence number) so simultaneous
   events process in schedule order. *)
module Event_queue = Map.Make (struct
  type t = int * int
  let compare = compare
end)

let run ?(model = Device_model.default) ?(settle_ps = 0) netlist stimuli =
  if Netlist.is_sequential netlist then
    raise
      (Simulation_error
         "the event-driven simulator is combinational-only; use the \
          compiled (cycle-based) simulator for sequential designs");
  let fanout = Netlist.fanout_table netlist in
  let readers = Hashtbl.create 64 in
  List.iter
    (fun (g : Netlist.gate) ->
      List.iter
        (fun i ->
          let cur = try Hashtbl.find readers i with Not_found -> [] in
          Hashtbl.replace readers i (g :: cur))
        g.inputs)
    netlist.Netlist.gates;
  let readers_of net = try Hashtbl.find readers net with Not_found -> [] in
  let values = Hashtbl.create 64 in
  let value net = try Hashtbl.find values net with Not_found -> Logic.VX in
  (* The value a net will hold once its pending events have fired.
     Comparing against it (not the current value) avoids the classic
     stale-event bug where a pending change is silently overridden. *)
  let projected = Hashtbl.create 64 in
  let projection net =
    try Hashtbl.find projected net with Not_found -> value net
  in
  let queue = ref Event_queue.empty in
  let seq = ref 0 in
  let schedule time net v =
    incr seq;
    Hashtbl.replace projected net v;
    queue := Event_queue.add (time, !seq) (net, v) !queue
  in
  (* Schedule all the stimulus vectors up front. *)
  let interval = Stimuli.interval_ps stimuli in
  List.iteri
    (fun k vec ->
      List.iter (fun (net, v) -> schedule (k * interval) net v) vec)
    (Stimuli.vectors stimuli);
  let horizon =
    (List.length (Stimuli.vectors stimuli) * interval) + settle_ps
  in
  let waveform = ref Waveform.empty in
  let events = ref 0 and evals = ref 0 in
  let rec loop () =
    match Event_queue.min_binding_opt !queue with
    | None -> ()
    | Some (((time, _) as key), (net, v)) ->
      queue := Event_queue.remove key !queue;
      if time > horizon + 100_000 then
        raise (Simulation_error "simulation did not settle (oscillation?)");
      if value net <> v then begin
        incr events;
        Hashtbl.replace values net v;
        waveform := Waveform.record !waveform net time v;
        let react (g : Netlist.gate) =
          incr evals;
          let ins = List.map value g.inputs in
          let out = Logic.eval g.op ins in
          if out <> projection g.output then begin
            let d = Device_model.gate_delay_ps model g ~fanout:(fanout g.output) in
            schedule (time + d) g.output out
          end
        in
        List.iter react (readers_of net)
      end;
      loop ()
  in
  loop ();
  let waveform = Waveform.set_end_time !waveform horizon in
  { waveform;
    stats = { events_processed = !events; gate_evaluations = !evals } }

(* Steady-state output values after the final vector: the functional
   result, comparable against the compiled simulator. *)
let final_outputs result netlist =
  List.map
    (fun o -> (o, Waveform.final_value result.waveform o))
    netlist.Netlist.primary_outputs
