(** A small circuit zoo: the cells the paper's narrative mentions (the
    inverter of Fig. 7, a CMOS full adder from the Fig. 9 browser) plus
    parameterized and random generators for tests and benchmarks. *)

val inverter : unit -> Netlist.t
val c17 : unit -> Netlist.t
(** The ISCAS-85 c17 benchmark (six NAND2 gates). *)

val full_adder : unit -> Netlist.t
val ripple_adder : int -> Netlist.t
(** n-bit ripple-carry adder; inputs [cin, a0, b0, ..]; outputs
    [s0.., c(n-1)]. *)

val parity : int -> Netlist.t
(** n-input XOR tree. *)

val mux4 : unit -> Netlist.t

val counter : int -> Netlist.t
(** n-bit binary counter with an enable input (sequential). *)

val shift_register : int -> Netlist.t
(** n-stage shift register (sequential). *)

val lfsr4 : unit -> Netlist.t
(** 4-bit Fibonacci LFSR, period 15 (sequential). *)

val s27 : unit -> Netlist.t
(** The ISCAS-89 s27 benchmark (3 flip-flops, sequential). *)

val random :
  ?name:string -> n_inputs:int -> n_gates:int -> Rng.t -> Netlist.t
(** A random combinational DAG; unread gate outputs become primary
    outputs. *)

val all_named : (string * (unit -> Netlist.t)) list
(** The fixed zoo, by name (used by the CLI and the test suites). *)
