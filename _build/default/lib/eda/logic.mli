(** Three-valued logic and the gate operator alphabet of the netlist
    substrate. *)

(** Signal values: [VX] is unknown / uninitialized. *)
type value =
  | V0
  | V1
  | VX

type gate_op =
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor

val all_ops : gate_op list
val op_name : gate_op -> string
val op_of_name : string -> gate_op option

val arity_ok : gate_op -> int -> bool
(** [Buf]/[Not] are unary; the rest take two or more inputs. *)

val value_name : value -> string

(** {1 Three-valued operators (pessimistic X propagation)} *)

val v_not : value -> value
val v_and : value -> value -> value
val v_or : value -> value -> value
val v_xor : value -> value -> value

val eval : gate_op -> value list -> value
(** Evaluate an operator over its inputs.
    @raise Invalid_argument on an arity violation. *)

val of_bool : bool -> value
val to_bool : value -> bool option

(** {1 Cell characterization} *)

val intrinsic_delay_ps : gate_op -> int
(** Unloaded gate delay in picoseconds, before device-model scaling. *)

val energy_weight : gate_op -> float
(** Relative switching energy, for the activity-based power model. *)

val transistor_count : gate_op -> int -> int
(** CMOS device count of the reference cell at the given arity. *)
