(** Device models: process parameters scaling every gate's timing and
    power.  The device-model editor of Fig. 1 manipulates these. *)

type t = {
  model_name : string;
  process_nm : int;
  vdd_mv : int;
  vth_mv : int;
  delay_scale : float;
  power_scale : float;
}

exception Model_error of string

val create :
  model_name:string -> process_nm:int -> vdd_mv:int -> vth_mv:int ->
  delay_scale:float -> power_scale:float -> t
(** @raise Model_error when the threshold reaches the supply or a scale
    is not positive. *)

val default : t
(** A generic 800 nm-era process. *)

val fast : t
val low_power : t

(** Edits applied by the device-model editor tool. *)
type edit =
  | Rename of string
  | Set_vdd of int
  | Set_vth of int
  | Scale_delay of float
  | Scale_power of float

val apply_edit : t -> edit -> t
val apply_edits : t -> edit list -> t

val gate_delay_ps : t -> Netlist.gate -> fanout:int -> int
(** Effective delay: intrinsic scaled by process and drive, plus fanout
    loading; at least 1 ps. *)

val gate_energy : t -> Netlist.gate -> float

val hash : t -> string
val pp : Format.formatter -> t -> unit
