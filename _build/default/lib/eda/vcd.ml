(* VCD (Value Change Dump, IEEE 1364) export of waveforms, so the
   simulator's output opens in standard waveform viewers. *)

exception Vcd_error of string

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let identifier k =
  let base = 94 and first = 33 in
  let rec go k acc =
    let c = Char.chr (first + (k mod base)) in
    let acc = String.make 1 c ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let value_char = function
  | Logic.V0 -> '0'
  | Logic.V1 -> '1'
  | Logic.VX -> 'x'

let to_string ?(module_name = "top") ?(timescale = "1ps") (w : Waveform.t)
    nets =
  if nets = [] then raise (Vcd_error "no nets selected");
  List.iter
    (fun n ->
      if not (List.mem n (Waveform.nets w)) then
        raise (Vcd_error (Printf.sprintf "no trace for net %S" n)))
    nets;
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "$date ddf export $end\n";
  out "$version ddf waveform dump $end\n";
  out "$timescale %s $end\n" timescale;
  out "$scope module %s $end\n" module_name;
  let ids = List.mapi (fun i net -> (net, identifier i)) nets in
  List.iter
    (fun (net, id) -> out "$var wire 1 %s %s $end\n" id net)
    ids;
  out "$upscope $end\n$enddefinitions $end\n";
  (* initial values *)
  out "$dumpvars\n";
  List.iter
    (fun (net, id) -> out "%c%s\n" (value_char (Waveform.value_at w net 0)) id)
    ids;
  out "$end\n";
  (* merge all traces into one time-ordered change list *)
  let changes =
    List.concat_map
      (fun (net, id) ->
        List.filter_map
          (fun (time, v) -> if time = 0 then None else Some (time, id, v))
          (Waveform.trace w net))
      ids
    |> List.sort compare
  in
  let last_time = ref (-1) in
  List.iter
    (fun (time, id, v) ->
      if time <> !last_time then begin
        out "#%d\n" time;
        last_time := time
      end;
      out "%c%s\n" (value_char v) id)
    changes;
  if Waveform.end_time_ps w > !last_time then
    out "#%d\n" (Waveform.end_time_ps w);
  Buffer.contents buf

let to_file path ?module_name ?timescale w nets =
  let oc = open_out path in
  (try output_string oc (to_string ?module_name ?timescale w nets)
   with e ->
     close_out oc;
     raise e);
  close_out oc
