(** The plotter tool: ASCII timing diagrams and performance bar charts
    — the performance-plot entity of Fig. 1. *)

type t = {
  title : string;
  rendering : string;
  nets_plotted : string list;
}

val render : ?width:int -> title:string -> Waveform.t -> string list -> t
(** Timing diagram of the named nets ([_] low, [#] high, [?] unknown). *)

val of_simulation : ?width:int -> title:string -> Sim_event.result -> string list -> t

val of_performance : ?width:int -> Performance.t -> t
(** Metric bars (critical path, power, switching) of an analysis. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
