(** VCD (Value Change Dump, IEEE 1364) export of waveforms, so the
    simulator's output opens in standard waveform viewers. *)

exception Vcd_error of string

val identifier : int -> string
(** The k-th VCD identifier code (printable ASCII, shortest first). *)

val to_string :
  ?module_name:string -> ?timescale:string -> Waveform.t -> string list ->
  string
(** Dump the named nets. @raise Vcd_error when a net has no trace or
    the selection is empty. *)

val to_file :
  string -> ?module_name:string -> ?timescale:string -> Waveform.t ->
  string list -> unit
