(** The transistor-level view of a circuit (Fig. 7), with genuine
    switch-level evaluation.

    Gates decompose into inverting CMOS primitives (NOT, NAND, NOR),
    each expanding into a complementary stage of devices.  Evaluation
    runs conducting-path analysis over the pull-up and pull-down
    channel graphs per stage, with X handled by strong/possible path
    distinction — a different computational model than gate evaluation,
    which is what makes the logic/transistor correspondence check of
    Fig. 8 meaningful. *)

type device_type =
  | Nmos
  | Pmos

type device = {
  dname : string;
  dtype : device_type;
  gate_net : string;
  source : string;
  drain : string;
}

type stage = {
  out : string;
  devices : device list;
}

type t = {
  tname : string;
  inputs : string list;
  outputs : string list;
  stages : stage list;
}

exception Transistor_error of string

val vdd : string
val gnd : string

val of_netlist : Netlist.t -> t
(** CMOS expansion; XOR/XNOR lower through the four-NAND structure. *)

val device_count : t -> int

val eval : t -> (string * Logic.value) list -> (string * Logic.value) list
(** Switch-level evaluation of the primary outputs: 1 when a strong
    pull-up path exists and no possible pull-down, 0 dually, X
    otherwise (including fights). *)

val corresponds : ?samples:int -> Netlist.t -> t -> Rng.t -> bool
(** Functional agreement with the gate-level view: exhaustive up to 10
    inputs, random sampling above. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
