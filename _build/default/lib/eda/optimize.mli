(** Statistical circuit optimizers over gate drive strengths.

    Three tools with identical input and output types — so all three
    share one encapsulation, the paper's section 3.3 sharing example:
    random search, greedy hill climbing and simulated annealing, each
    minimizing a delay/power trade-off. *)

type objective = {
  delay_weight : float;
  power_weight : float;
}

val default_objective : objective

type report = {
  strategy : string;
  initial_cost : float;
  final_cost : float;
  evaluations : int;
}

type strategy =
  | Random_search
  | Hill_climb
  | Annealing

val strategy_name : strategy -> string
val all_strategies : strategy list

val cost : ?model:Device_model.t -> objective -> Netlist.t -> float
(** Weighted critical path plus total gate energy. *)

val cost_with_activity :
  ?model:Device_model.t -> objective -> activity:(string -> int) ->
  Netlist.t -> float
(** Activity-aware cost: gate energy weighted by measured per-net
    switching counts — the objective used when a simulator is passed to
    the optimizer as data (section 3.3). *)

val run :
  ?budget:int -> ?objective:objective -> ?cost:(Netlist.t -> float) ->
  strategy -> Netlist.t -> Rng.t -> Netlist.t * report
(** Optimize drive assignments within the evaluation budget; the result
    is functionally identical to the input (drives do not change
    logic) and never costlier. *)

val report_hash : report -> string
val pp_report : Format.formatter -> report -> unit
