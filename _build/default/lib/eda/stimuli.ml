(* Stimuli: sequences of input vectors applied at a fixed interval. *)

type vector = (string * Logic.value) list

type t = {
  interval_ps : int;   (* time between successive vectors *)
  vectors : vector list;
}

exception Stimuli_error of string

let create ?(interval_ps = 2000) vectors =
  if interval_ps <= 0 then raise (Stimuli_error "interval must be positive");
  { interval_ps; vectors }

let length t = List.length t.vectors
let interval_ps t = t.interval_ps
let vectors t = t.vectors

(* All 2^n vectors over the given inputs, LSB-first: exhaustive testing
   of small circuits (and truth-table construction for the PLA tool). *)
let exhaustive inputs =
  let n = List.length inputs in
  if n > 20 then raise (Stimuli_error "exhaustive stimuli limited to 20 inputs");
  let vector k =
    List.mapi
      (fun i name -> (name, Logic.of_bool ((k lsr i) land 1 = 1)))
      inputs
  in
  create (List.init (1 lsl n) vector)

let random ~inputs ~n rng =
  let vector _ =
    List.map (fun name -> (name, Logic.of_bool (Rng.bool rng))) inputs
  in
  create (List.init n vector)

(* Walking-ones: classic connectivity-style pattern. *)
let walking_ones inputs =
  let vector k =
    List.mapi (fun i name -> (name, Logic.of_bool (i = k))) inputs
  in
  create (List.init (List.length inputs) vector)

(* Concatenate several stimulus sets into one run: the batched
   encapsulation case of section 4.1. *)
let concat = function
  | [] -> raise (Stimuli_error "nothing to concatenate")
  | first :: _ as sets ->
    create ~interval_ps:first.interval_ps
      (List.concat_map (fun s -> s.vectors) sets)

let for_netlist ?(n = 16) nl rng =
  random ~inputs:nl.Netlist.primary_inputs ~n rng

let hash t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int t.interval_ps);
  List.iter
    (fun v ->
      Buffer.add_char buf '|';
      List.iter
        (fun (n, x) ->
          Buffer.add_string buf n;
          Buffer.add_string buf (Logic.value_name x))
        v)
    t.vectors;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp ppf t =
  Fmt.pf ppf "stimuli: %d vectors @ %d ps" (length t) t.interval_ps
