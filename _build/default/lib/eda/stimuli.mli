(** Stimuli: sequences of input vectors applied at a fixed interval. *)

type vector = (string * Logic.value) list

type t

exception Stimuli_error of string

val create : ?interval_ps:int -> vector list -> t
(** @raise Stimuli_error when the interval is not positive. *)

val length : t -> int
val interval_ps : t -> int
val vectors : t -> vector list

val exhaustive : string list -> t
(** All [2^n] vectors over the inputs, LSB-first.
    @raise Stimuli_error beyond 20 inputs. *)

val random : inputs:string list -> n:int -> Rng.t -> t

val walking_ones : string list -> t
(** One vector per input, with only that input high. *)

val concat : t list -> t
(** One run over all the vectors, at the first set's interval: the
    batched tool call of section 4.1. @raise Stimuli_error on []. *)

val for_netlist : ?n:int -> Netlist.t -> Rng.t -> t
(** Random vectors over a netlist's primary inputs. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
