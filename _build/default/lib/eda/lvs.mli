(** LVS-style netlist comparison: the verifier tool.

    Structural equivalence up to net and gate renaming, with primary
    ports pinned by name.  The matcher runs iterative signature
    refinement over the gate/net graph, then verifies the induced
    correspondence edge by edge, reporting mismatches (a verification
    is a browsable design object, not just a boolean). *)

type mismatch =
  | Port_sets_differ of string
  | Gate_count of int * int
  | Unmatched_gate of string
  | Signature_conflict of string

type t = {
  reference_name : string;
  candidate_name : string;
  equivalent : bool;
  matched_gates : int;
  mismatches : mismatch list;
  gate_map : (string * string) list;
}

val mismatch_to_string : mismatch -> string

val compare_netlists : Netlist.t -> Netlist.t -> t
(** [compare_netlists reference candidate]. *)

val hash : t -> string
val pp : Format.formatter -> t -> unit
