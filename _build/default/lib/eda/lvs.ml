(* LVS-style netlist comparison: the verifier tool.

   Structural equivalence up to net and gate renaming, with primary
   ports pinned by name.  The matcher runs iterative signature
   refinement (a Weisfeiler-Lehman colouring over the gate/net
   bipartite graph), then checks the induced correspondence edge by
   edge.  Mismatches are reported, not just detected, since the
   verification design object is browsable history. *)

type mismatch =
  | Port_sets_differ of string
  | Gate_count of int * int
  | Unmatched_gate of string        (* gate of the reference *)
  | Signature_conflict of string    (* ambiguous or inconsistent region *)

type t = {
  reference_name : string;
  candidate_name : string;
  equivalent : bool;
  matched_gates : int;
  mismatches : mismatch list;
  gate_map : (string * string) list;  (* reference gate -> candidate gate *)
}

let mismatch_to_string = function
  | Port_sets_differ s -> "port sets differ: " ^ s
  | Gate_count (a, b) -> Printf.sprintf "gate counts differ: %d vs %d" a b
  | Unmatched_gate g -> "unmatched gate: " ^ g
  | Signature_conflict s -> "signature conflict: " ^ s

(* Stable signatures: iterate net/gate colour refinement rounds. *)
let signatures nl ~rounds =
  let gate_sig = Hashtbl.create 64 in
  let net_sig = Hashtbl.create 64 in
  let init_net n =
    if List.mem n nl.Netlist.primary_inputs then "PI:" ^ n
    else if List.mem n nl.Netlist.primary_outputs then "PO:" ^ n
    else "net"
  in
  List.iter (fun n -> Hashtbl.replace net_sig n (init_net n)) (Netlist.nets nl);
  (* primary outputs may also be internal nets; PO label dominates *)
  List.iter
    (fun (g : Netlist.gate) ->
      Hashtbl.replace gate_sig g.Netlist.gname
        (Printf.sprintf "%s/%d/%d" (Logic.op_name g.Netlist.op)
           (List.length g.Netlist.inputs) g.Netlist.drive))
    nl.Netlist.gates;
  let digest s = Digest.to_hex (Digest.string s) in
  for _round = 1 to rounds do
    (* refresh gate signatures from net signatures *)
    let new_gate = Hashtbl.create 64 in
    List.iter
      (fun (g : Netlist.gate) ->
        let ins =
          List.map (fun n -> Hashtbl.find net_sig n) g.Netlist.inputs
          (* input order is irrelevant for symmetric operators *)
          |> List.sort compare
        in
        let s =
          Hashtbl.find gate_sig g.Netlist.gname
          ^ "(" ^ String.concat "," ins ^ ")->"
          ^ Hashtbl.find net_sig g.Netlist.output
        in
        Hashtbl.replace new_gate g.Netlist.gname (digest s))
      nl.Netlist.gates;
    (* refresh net signatures from adjacent gate signatures *)
    let new_net = Hashtbl.create 64 in
    let feeders = Hashtbl.create 64 and driver = Hashtbl.create 64 in
    List.iter
      (fun (g : Netlist.gate) ->
        Hashtbl.replace driver g.Netlist.output
          (Hashtbl.find new_gate g.Netlist.gname);
        List.iter
          (fun n ->
            let cur = try Hashtbl.find feeders n with Not_found -> [] in
            Hashtbl.replace feeders n
              (Hashtbl.find new_gate g.Netlist.gname :: cur))
          g.Netlist.inputs)
      nl.Netlist.gates;
    List.iter
      (fun n ->
        let d = try Hashtbl.find driver n with Not_found -> "src" in
        let f =
          (try Hashtbl.find feeders n with Not_found -> []) |> List.sort compare
        in
        let s =
          Hashtbl.find net_sig n ^ "|" ^ d ^ "|" ^ String.concat "," f
        in
        Hashtbl.replace new_net n (digest s))
      (Netlist.nets nl);
    Hashtbl.reset gate_sig;
    Hashtbl.iter (Hashtbl.replace gate_sig) new_gate;
    Hashtbl.reset net_sig;
    Hashtbl.iter (Hashtbl.replace net_sig) new_net
  done;
  (gate_sig, net_sig)

let compare_netlists reference candidate =
  let mismatches = ref [] in
  let fail m = mismatches := m :: !mismatches in
  let ports nl =
    (List.sort compare nl.Netlist.primary_inputs,
     List.sort compare nl.Netlist.primary_outputs)
  in
  let ri, ro = ports reference and ci, co = ports candidate in
  if ri <> ci then
    fail
      (Port_sets_differ
         (Printf.sprintf "inputs {%s} vs {%s}" (String.concat "," ri)
            (String.concat "," ci)));
  if ro <> co then
    fail
      (Port_sets_differ
         (Printf.sprintf "outputs {%s} vs {%s}" (String.concat "," ro)
            (String.concat "," co)));
  let nr = Netlist.gate_count reference and nc = Netlist.gate_count candidate in
  if nr <> nc then fail (Gate_count (nr, nc));
  let gate_map = ref [] and matched = ref 0 in
  if !mismatches = [] then begin
    let rounds = 2 + Netlist.depth reference in
    let ref_sigs, _ = signatures reference ~rounds in
    let cand_sigs, _ = signatures candidate ~rounds in
    (* bucket candidate gates by signature *)
    let buckets = Hashtbl.create 64 in
    Hashtbl.iter
      (fun gname s ->
        let cur = try Hashtbl.find buckets s with Not_found -> [] in
        Hashtbl.replace buckets s (gname :: cur))
      cand_sigs;
    let try_match (g : Netlist.gate) =
      let s = Hashtbl.find ref_sigs g.Netlist.gname in
      match Hashtbl.find_opt buckets s with
      | Some (c :: rest) ->
        Hashtbl.replace buckets s rest;
        gate_map := (g.Netlist.gname, c) :: !gate_map;
        incr matched
      | Some [] | None -> fail (Unmatched_gate g.Netlist.gname)
    in
    List.iter try_match reference.Netlist.gates;
    (* the correspondence must also be consistent on nets: verify by
       checking that matched gates drive matched nets *)
    if !mismatches = [] then begin
      let cand_gate g =
        List.find (fun (x : Netlist.gate) -> x.Netlist.gname = g)
          candidate.Netlist.gates
      in
      let net_map = Hashtbl.create 64 in
      (* ports are pinned by name on both sides *)
      List.iter
        (fun p -> Hashtbl.replace net_map p p)
        (reference.Netlist.primary_inputs @ reference.Netlist.primary_outputs);
      let bind_net rn cn =
        match Hashtbl.find_opt net_map rn with
        | None -> Hashtbl.replace net_map rn cn
        | Some cn' ->
          if cn <> cn' then
            fail
              (Signature_conflict
                 (Printf.sprintf "net %s maps to both %s and %s" rn cn cn'))
      in
      (* walk the reference in topological order so a gate's inputs are
         already bound (driver processed, or a pinned port) when its
         instance correspondence is checked *)
      let gate_map_tbl = Hashtbl.create 64 in
      List.iter (fun (rg, cg) -> Hashtbl.replace gate_map_tbl rg cg) !gate_map;
      List.iter
        (fun (r : Netlist.gate) ->
          let rg = r.Netlist.gname in
          let cg = Hashtbl.find gate_map_tbl rg in
          let c = cand_gate cg in
          bind_net r.Netlist.output c.Netlist.output;
          (* symmetric inputs: compare as multisets via sorted pairing
             of already-known bindings where possible *)
          if List.length r.Netlist.inputs = List.length c.Netlist.inputs then begin
            let unbound_r = ref [] and available_c = ref c.Netlist.inputs in
            List.iter
              (fun rn ->
                match Hashtbl.find_opt net_map rn with
                | Some cn when List.mem cn !available_c ->
                  available_c :=
                    (let rec drop = function
                       | [] -> []
                       | x :: rest -> if x = cn then rest else x :: drop rest
                     in
                     drop !available_c)
                | Some cn ->
                  fail
                    (Signature_conflict
                       (Printf.sprintf "gate %s input %s expected %s" rg rn cn))
                | None -> unbound_r := rn :: !unbound_r)
              r.Netlist.inputs;
            (* remaining inputs pair up arbitrarily inside the symmetric
               group; bind them in sorted order *)
            let rs = List.sort compare !unbound_r in
            let cs = List.sort compare !available_c in
            List.iter2 bind_net rs cs
          end
          else fail (Signature_conflict (Printf.sprintf "gate %s arity" rg)))
        (Netlist.topological_gates reference);
      (* ports must map to themselves *)
      List.iter
        (fun p ->
          match Hashtbl.find_opt net_map p with
          | Some c when c <> p ->
            fail (Signature_conflict (Printf.sprintf "port %s maps to %s" p c))
          | Some _ | None -> ())
        (reference.Netlist.primary_inputs @ reference.Netlist.primary_outputs)
    end
  end;
  {
    reference_name = reference.Netlist.name;
    candidate_name = candidate.Netlist.name;
    equivalent = !mismatches = [];
    matched_gates = !matched;
    mismatches = List.rev !mismatches;
    gate_map = List.rev !gate_map;
  }

let hash v =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%s|%b|%d|%s" v.reference_name v.candidate_name
          v.equivalent v.matched_gates
          (String.concat ";" (List.map mismatch_to_string v.mismatches))))

let pp ppf v =
  if v.equivalent then
    Fmt.pf ppf "LVS %s vs %s: EQUIVALENT (%d gates matched)" v.reference_name
      v.candidate_name v.matched_gates
  else
    Fmt.pf ppf "LVS %s vs %s: MISMATCH@,%a" v.reference_name v.candidate_name
      (Fmt.list ~sep:Fmt.cut Fmt.string)
      (List.map mismatch_to_string v.mismatches)
