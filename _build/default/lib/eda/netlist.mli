(** Gate-level netlists: the central design-data type of the substrate.

    The combinational part is a DAG of gates over named nets, rooted at
    primary inputs and flop outputs.  Gates carry a drive strength (1,
    2 or 4) so timing has a sizing knob and the statistical optimizers
    a real design space.  Sequential designs add D flip-flops clocked
    once per stimulus vector (the clock net is implicit). *)

type gate = {
  gname : string;
  op : Logic.gate_op;
  inputs : string list;
  output : string;
  drive : int;
}

(** A D flip-flop: [q] takes [d]'s settled value at each clock edge. *)
type flop = {
  fname : string;
  d : string;
  q : string;
  init : Logic.value;
}

type t = {
  name : string;
  primary_inputs : string list;
  primary_outputs : string list;
  gates : gate list;
  flops : flop list;
}

exception Netlist_error of string

(** {1 Construction} *)

val gate : ?drive:int -> string -> Logic.gate_op -> string list -> string -> gate
(** [gate name op inputs output] checks arity and drive.
    @raise Netlist_error on violation. *)

val flop : ?init:Logic.value -> string -> d:string -> q:string -> flop

val create :
  ?flops:flop list ->
  name:string -> primary_inputs:string list -> primary_outputs:string list ->
  gate list -> t
(** Validates: unique gate and flop names, single driver per net, no
    driven primary inputs, no undriven gate or flop inputs or primary
    outputs. @raise Netlist_error on violation. *)

val is_sequential : t -> bool
val flop_outputs : t -> string list

val validate : t -> unit

(** {1 Structure} *)

val nets : t -> string list
val gate_count : t -> int
val net_count : t -> int
val transistor_count : t -> int
val fanout_table : t -> string -> int
(** Readers per net (primary outputs count as one reader). *)

val levelize : t -> (int * gate) list
(** Gates with their logic level (flop outputs are level-0 sources),
    topologically sorted.
    @raise Netlist_error on a combinational cycle. *)

val topological_gates : t -> gate list
val depth : t -> int

(** {1 Evaluation} *)

type state = (string * Logic.value) list
(** Current flop values, by flop name. *)

val initial_state : t -> state

val eval : ?state:state -> t -> (string * Logic.value) list -> (string * Logic.value) list
(** Zero-delay steady-state values of the primary outputs under the
    given input environment; missing inputs read as X; flops read from
    [state] (initial values by default). *)

val step :
  t -> state -> (string * Logic.value) list ->
  state * (string * Logic.value) list
(** One clock cycle: settle, capture every flop's [d], return the new
    state and the settled outputs. *)

val run_cycles :
  t -> (string * Logic.value) list list -> (string * Logic.value) list list
(** Clocked simulation from the initial state, one cycle per vector. *)

(** {1 Editing primitives (used by the netlist-editor tool)} *)

val rename : t -> string -> t
val add_gate : t -> gate -> t
val remove_gate : t -> string -> t
val set_drive : t -> string -> int -> t
val find_gate : t -> string -> gate option

(** {1 Identity} *)

val to_canonical_string : t -> string
val hash : t -> string
(** Content hash: drives the store's physical-data sharing. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
