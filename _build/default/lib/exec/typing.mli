(** Payload typing: does a payload fit a schema entity?

    Keyed on the entity's root type so subtypes inherit the check;
    entities outside the known universe pass (schemas are extensible,
    their payloads constrained only by their encapsulations). *)

open Ddf_schema

exception Type_mismatch of string

val expected_kind : string -> Ddf_data.value -> bool
(** [expected_kind root payload]: does the payload fit the root entity? *)

val check : Schema.t -> string -> Ddf_data.value -> unit
(** @raise Type_mismatch when the payload cannot represent the entity. *)
