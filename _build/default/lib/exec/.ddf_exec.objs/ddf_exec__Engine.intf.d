lib/exec/engine.mli: Ddf_data Ddf_graph Ddf_history Ddf_schema Ddf_store Ddf_tools Encapsulation Format History Schema Store Task_graph
