lib/exec/typing.mli: Ddf_data Ddf_schema Schema
