lib/exec/parallel.ml: Array Ddf_data Ddf_graph Ddf_history Ddf_store Ddf_tools Domain Encapsulation Engine Fmt Fun Hashtbl List Option Store Task_graph
