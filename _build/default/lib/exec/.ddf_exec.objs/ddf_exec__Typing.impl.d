lib/exec/typing.ml: Ddf_data Ddf_schema Printf Schema Standard_schemas
