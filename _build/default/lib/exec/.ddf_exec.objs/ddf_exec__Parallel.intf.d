lib/exec/parallel.mli: Ddf_graph Ddf_store Engine Format Store Task_graph
