lib/exec/engine.ml: Ddf_data Ddf_graph Ddf_history Ddf_schema Ddf_store Ddf_tools Encapsulation Fmt Format Hashtbl History List Option Printf Schema Standard_tools Store String Task_graph Typing
