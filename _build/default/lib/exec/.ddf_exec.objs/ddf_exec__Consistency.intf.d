lib/exec/consistency.mli: Ddf_store Engine Format Store
