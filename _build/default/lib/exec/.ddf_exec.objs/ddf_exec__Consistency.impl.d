lib/exec/consistency.ml: Ddf_graph Ddf_history Ddf_schema Ddf_store Engine Fmt History List Store
