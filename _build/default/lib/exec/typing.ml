(* Payload typing: does a payload fit a schema entity?

   Keyed on the entity's root type, so subtypes inherit the check.
   Entities outside the known universe pass (schemas are extensible;
   their payloads are then only constrained by their encapsulations). *)

open Ddf_schema
module E = Standard_schemas.E

let expected_kind root (v : Ddf_data.value) =
  if root = E.netlist then (match v with Ddf_data.Netlist _ -> true | _ -> false)
  else if root = E.layout then (match v with Ddf_data.Layout _ -> true | _ -> false)
  else if root = E.device_models then
    (match v with Ddf_data.Device_models _ -> true | _ -> false)
  else if root = E.stimuli then (match v with Ddf_data.Stimuli _ -> true | _ -> false)
  else if root = E.circuit then (match v with Ddf_data.Circuit _ -> true | _ -> false)
  else if root = E.performance then
    (match v with Ddf_data.Performance _ -> true | _ -> false)
  else if root = E.verification then
    (match v with Ddf_data.Verification _ -> true | _ -> false)
  else if root = E.performance_plot then
    (match v with Ddf_data.Plot _ -> true | _ -> false)
  else if root = E.extraction_statistics then
    (match v with Ddf_data.Extraction_statistics _ -> true | _ -> false)
  else if root = E.transistor_netlist then
    (match v with Ddf_data.Transistor_view _ -> true | _ -> false)
  else if root = E.sim_options then
    (match v with Ddf_data.Sim_options _ -> true | _ -> false)
  else if root = E.placement_options then
    (match v with Ddf_data.Placement_options _ -> true | _ -> false)
  else if root = E.optimizer_options then
    (match v with Ddf_data.Optimizer_options _ -> true | _ -> false)
  else true

exception Type_mismatch of string

let check schema entity (v : Ddf_data.value) =
  let ok =
    if Schema.mem schema entity && Schema.kind_of schema entity = Schema.Tool
    then (match v with Ddf_data.Tool _ -> true | _ -> false)
    else if Schema.mem schema entity then
      expected_kind (Schema.root_of schema entity) v
    else true
  in
  if not ok then
    raise
      (Type_mismatch
         (Printf.sprintf "payload %s does not fit entity %s"
            (Ddf_data.kind_name v) entity))
