(** Tool encapsulations: the binding between schema entities and actual
    tool behaviours.

    An encapsulation serves (tool entity, goal entity) pairs.  Several
    tools may share one encapsulation (the three statistical optimizers
    of section 3.3); one tool may expose several behaviours,
    distinguished by goal entity or by the tool instance's own payload
    (multi-function tools); and tools created during the design — the
    compiled simulator of Fig. 2 — carry their behaviour in their
    payload. *)

open Ddf_schema

type args = (string * Ddf_data.value) list
(** role -> payload; optional roles are absent when unfilled. *)

type outcome = (string * Ddf_data.value) list
(** goal entity -> produced payload, one entry per co-produced output. *)

exception Tool_error of string

val tool_errorf : ('a, Format.formatter, unit, 'b) format4 -> 'a

type t = {
  key : string;          (** unique registry key *)
  tool_entity : string;
  goals : string list;   (** [[]] accepts any goal of the tool *)
  behavior : tool:Ddf_data.value -> goals:string list -> args -> outcome;
  cost_us : args -> int;
      (** simulated execution cost, for the Fig. 6 machine-pool
          scheduler *)
  batched : bool;
      (** batched encapsulations receive all selected instances in one
          call; per-instance ones run once per selection (section 4.1) *)
}

val arg : args -> string -> Ddf_data.value option
val required : args -> string -> Ddf_data.value
(** @raise Tool_error when absent. *)

type registry

val create_registry : unit -> registry

val register : registry -> t -> unit
(** @raise Tool_error on a duplicate key. *)

val register_composer : registry -> string -> (args -> Ddf_data.value) -> unit
(** The implicit composition function of a composite entity, including
    its consistency check ("can these device models be used with this
    circuit?"). *)

val find_composer : registry -> string -> args -> Ddf_data.value

val register_decomposer :
  registry -> string -> (Ddf_data.value -> (string * Ddf_data.value) list) -> unit
(** The implicit decomposition function: split a composite instance
    into its parts (section 3.1). *)

val find_decomposer :
  registry -> string -> Ddf_data.value -> (string * Ddf_data.value) list

val register_merger :
  registry -> string -> (Ddf_data.value list -> Ddf_data.value) -> unit
(** Batched tool calls (section 4.1): how several selected instances of
    a root entity merge into one payload for a single invocation. *)

val find_merger :
  registry -> string -> (Ddf_data.value list -> Ddf_data.value) option

val resolve : registry -> Schema.t -> tool_entity:string -> goal:string -> t
(** The encapsulation serving a tool (or an ancestor, so tool subtypes
    inherit encapsulations) for a goal entity.
    @raise Tool_error when none is registered. *)

val keys : registry -> string list
