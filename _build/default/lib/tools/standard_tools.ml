(* Encapsulations for every tool of the odyssey schema, binding the
   Fig. 1 / Fig. 2 entities to the substrate implementations. *)

open Ddf_eda
module E = Ddf_schema.Standard_schemas.E

let netlist_arg args role = Ddf_data.as_netlist (Encapsulation.required args role)

(* Cost models, in simulated microseconds: proportional to the work the
   substrate actually does, so the Fig. 6 scheduling experiments see
   realistic task-length skew. *)
let netlist_cost args role =
  match Encapsulation.arg args role with
  | Some (Ddf_data.Netlist nl) -> 50 + (5 * Netlist.gate_count nl)
  | Some _ | None -> 50

(* --- editors ------------------------------------------------------- *)

let netlist_editor_enc =
  let behavior ~tool ~goals:_ args =
    let script =
      match Ddf_data.as_tool tool with
      | Ddf_data.Scripted_netlist_editor s -> s
      | Ddf_data.Builtin _ | Ddf_data.Scripted_layout_editor _
      | Ddf_data.Scripted_model_editor _ | Ddf_data.Compiled_simulator _ ->
        Encapsulation.tool_errorf "netlist editor needs an editing session"
    in
    let produced =
      match Encapsulation.arg args E.netlist with
      | Some base -> Edit_script.apply (Ddf_data.as_netlist base) script
      | None ->
        (* the optional dependency left unfilled: edit from scratch *)
        Edit_script.apply_from_scratch ~primary_inputs:[] ~primary_outputs:[]
          script
    in
    [ (E.edited_netlist, Ddf_data.Netlist produced) ]
  in
  {
    Encapsulation.key = "netlist_editor.scripted";
    tool_entity = E.netlist_editor;
    goals = [ E.edited_netlist ];
    behavior;
    cost_us = (fun args -> 20 + netlist_cost args E.netlist);
    batched = false;
  }

let layout_editor_enc =
  let behavior ~tool ~goals:_ args =
    let edits =
      match Ddf_data.as_tool tool with
      | Ddf_data.Scripted_layout_editor e -> e
      | Ddf_data.Builtin _ | Ddf_data.Scripted_netlist_editor _
      | Ddf_data.Scripted_model_editor _ | Ddf_data.Compiled_simulator _ ->
        Encapsulation.tool_errorf "layout editor needs an editing session"
    in
    let base =
      match Encapsulation.arg args E.layout with
      | Some l -> Ddf_data.as_layout l
      | None ->
        (* edit from scratch over an optional guide netlist *)
        (match Encapsulation.arg args "guide" with
        | Some g -> Layout.place (Ddf_data.as_netlist g)
        | None -> Encapsulation.tool_errorf "layout editor needs a layout or a guide")
    in
    [ (E.edited_layout, Ddf_data.Layout (Layout.apply_edits base edits)) ]
  in
  {
    Encapsulation.key = "layout_editor.scripted";
    tool_entity = E.layout_editor;
    goals = [ E.edited_layout ];
    behavior;
    cost_us = (fun _ -> 120);
    batched = false;
  }

let device_model_editor_enc =
  let behavior ~tool ~goals:_ args =
    let edits =
      match Ddf_data.as_tool tool with
      | Ddf_data.Scripted_model_editor e -> e
      | Ddf_data.Builtin _ | Ddf_data.Scripted_netlist_editor _
      | Ddf_data.Scripted_layout_editor _ | Ddf_data.Compiled_simulator _ ->
        Encapsulation.tool_errorf "model editor needs an editing session"
    in
    let base =
      match Encapsulation.arg args E.device_models with
      | Some m -> Ddf_data.as_device_models m
      | None -> Device_model.default
    in
    [ (E.device_models, Ddf_data.Device_models (Device_model.apply_edits base edits)) ]
  in
  {
    Encapsulation.key = "device_model_editor.scripted";
    tool_entity = E.device_model_editor;
    goals = [ E.device_models ];
    behavior;
    cost_us = (fun _ -> 30);
    batched = false;
  }

(* --- analysis tools ------------------------------------------------ *)

let simulator_enc =
  let behavior ~tool:_ ~goals:_ args =
    let circuit = Ddf_data.as_circuit (Encapsulation.required args E.circuit) in
    let stimuli = Ddf_data.as_stimuli (Encapsulation.required args E.stimuli) in
    let opts =
      match Encapsulation.arg args E.sim_options with
      | Some o -> Ddf_data.as_sim_options o
      | None -> Ddf_data.default_sim_options
    in
    ignore opts.Ddf_data.settle_ps;
    let perf =
      Performance.analyze ~model:circuit.Ddf_data.c_models
        circuit.Ddf_data.c_netlist stimuli
    in
    [ (E.performance, Ddf_data.Performance perf) ]
  in
  {
    Encapsulation.key = "simulator.event";
    tool_entity = E.simulator;
    goals = [ E.performance ];
    behavior;
    cost_us =
      (fun args ->
        let gates =
          match Encapsulation.arg args E.circuit with
          | Some (Ddf_data.Circuit c) -> Netlist.gate_count c.Ddf_data.c_netlist
          | Some _ | None -> 10
        in
        let vectors =
          match Encapsulation.arg args E.stimuli with
          | Some (Ddf_data.Stimuli s) -> Stimuli.length s
          | Some _ | None -> 1
        in
        100 + (gates * vectors * 2));
    batched = true;
  }

let verifier_enc =
  let behavior ~tool:_ ~goals:_ args =
    let reference = netlist_arg args "reference" in
    let candidate = netlist_arg args "candidate" in
    [ (E.verification, Ddf_data.Verification (Lvs.compare_netlists reference candidate)) ]
  in
  {
    Encapsulation.key = "verifier.lvs";
    tool_entity = E.verifier;
    goals = [ E.verification ];
    behavior;
    cost_us = (fun args -> 80 + netlist_cost args "reference" + netlist_cost args "candidate");
    batched = false;
  }

let plotter_enc =
  let behavior ~tool:_ ~goals:_ args =
    let perf = Ddf_data.as_performance (Encapsulation.required args E.performance) in
    [ (E.performance_plot, Ddf_data.Plot (Plot.of_performance perf)) ]
  in
  {
    Encapsulation.key = "plotter.ascii";
    tool_entity = E.plotter;
    goals = [ E.performance_plot ];
    behavior;
    cost_us = (fun _ -> 40);
    batched = false;
  }

(* --- physical tools ------------------------------------------------ *)

let extractor_enc =
  (* one invocation, two co-produced outputs (Fig. 5) *)
  let behavior ~tool:_ ~goals args =
    let layout = Ddf_data.as_layout (Encapsulation.required args E.layout) in
    let netlist, stats = Extract.run layout in
    List.filter_map
      (fun goal ->
        if goal = E.extracted_netlist then Some (goal, Ddf_data.Netlist netlist)
        else if goal = E.extraction_statistics then
          Some (goal, Ddf_data.Extraction_statistics stats)
        else None)
      goals
  in
  {
    Encapsulation.key = "extractor.geometric";
    tool_entity = E.extractor;
    goals = [ E.extracted_netlist; E.extraction_statistics ];
    behavior;
    cost_us =
      (fun args ->
        match Encapsulation.arg args E.layout with
        | Some (Ddf_data.Layout l) -> 60 + (3 * Layout.cell_count l)
        | Some _ | None -> 60);
    batched = false;
  }

let placer_enc =
  let behavior ~tool:_ ~goals:_ args =
    let nl = netlist_arg args E.netlist in
    let opts =
      match Encapsulation.arg args E.placement_options with
      | Some o -> Ddf_data.as_placement_options o
      | None -> Ddf_data.default_placement_options
    in
    let layout = Layout.place ~name_suffix:opts.Ddf_data.layout_suffix nl in
    [ (E.synthesized_layout, Ddf_data.Layout layout) ]
  in
  {
    Encapsulation.key = "placer.rows";
    tool_entity = E.placer;
    goals = [ E.synthesized_layout ];
    behavior;
    cost_us = (fun args -> 150 + (2 * netlist_cost args E.netlist));
    batched = false;
  }

let pla_generator_enc =
  let behavior ~tool:_ ~goals:_ args =
    let nl = netlist_arg args E.netlist in
    let pla = Pla.of_netlist nl in
    [ (E.pla_layout, Ddf_data.Layout (Pla.to_layout pla)) ]
  in
  {
    Encapsulation.key = "pla_generator.qm";
    tool_entity = E.pla_generator;
    goals = [ E.pla_layout ];
    behavior;
    cost_us = (fun args -> 200 + (4 * netlist_cost args E.netlist));
    batched = false;
  }

let transistor_expander_enc =
  let behavior ~tool:_ ~goals:_ args =
    let nl = netlist_arg args E.netlist in
    [ (E.transistor_netlist, Ddf_data.Transistor_view (Transistor.of_netlist nl)) ]
  in
  {
    Encapsulation.key = "transistor_expander.cmos";
    tool_entity = E.transistor_expander;
    goals = [ E.transistor_netlist ];
    behavior;
    cost_us = (fun args -> 40 + netlist_cost args E.netlist);
    batched = false;
  }

(* --- tools created during design (Fig. 2) -------------------------- *)

let simulator_compiler_enc =
  let behavior ~tool:_ ~goals:_ args =
    let nl = netlist_arg args E.netlist in
    [ (E.compiled_simulator,
       Ddf_data.Tool (Ddf_data.Compiled_simulator (Sim_compiled.compile nl))) ]
  in
  {
    Encapsulation.key = "simulator_compiler.levelized";
    tool_entity = E.simulator_compiler;
    goals = [ E.compiled_simulator ];
    behavior;
    cost_us = (fun args -> 300 + (10 * netlist_cost args E.netlist));
    batched = false;
  }

let compiled_simulator_enc =
  (* the tool instance itself carries the compiled program *)
  let behavior ~tool ~goals:_ args =
    let compiled =
      match Ddf_data.as_tool tool with
      | Ddf_data.Compiled_simulator c -> c
      | Ddf_data.Builtin _ | Ddf_data.Scripted_netlist_editor _
      | Ddf_data.Scripted_layout_editor _ | Ddf_data.Scripted_model_editor _ ->
        Encapsulation.tool_errorf "expected a compiled simulator instance"
    in
    let stimuli = Ddf_data.as_stimuli (Encapsulation.required args E.stimuli) in
    let responses = Sim_compiled.run compiled stimuli in
    [ (E.switch_performance,
       Ddf_data.Performance
         (Performance.of_compiled_run compiled responses ~model_name:"compiled")) ]
  in
  {
    Encapsulation.key = "compiled_simulator.run";
    tool_entity = E.compiled_simulator;
    goals = [ E.switch_performance ];
    behavior;
    cost_us =
      (fun args ->
        match Encapsulation.arg args E.stimuli with
        | Some (Ddf_data.Stimuli s) -> 20 + Stimuli.length s
        | Some _ | None -> 20);
    batched = true;
  }

(* --- the shared optimizer encapsulation (section 3.3) -------------- *)

let optimizer_enc =
  (* one encapsulation, three tool instances: Builtin
     "optimizer:<strategy>" selects the algorithm *)
  let behavior ~tool ~goals:_ args =
    let strategy =
      match Ddf_data.as_tool tool with
      | Ddf_data.Builtin "optimizer:random_search" -> Optimize.Random_search
      | Ddf_data.Builtin "optimizer:hill_climb" -> Optimize.Hill_climb
      | Ddf_data.Builtin "optimizer:annealing" -> Optimize.Annealing
      | Ddf_data.Builtin other ->
        Encapsulation.tool_errorf "unknown optimizer %S" other
      | Ddf_data.Scripted_netlist_editor _ | Ddf_data.Scripted_layout_editor _
      | Ddf_data.Scripted_model_editor _ | Ddf_data.Compiled_simulator _ ->
        Encapsulation.tool_errorf "expected an optimizer tool"
    in
    let nl = netlist_arg args E.netlist in
    let opts =
      match Encapsulation.arg args E.optimizer_options with
      | Some o -> Ddf_data.as_optimizer_options o
      | None -> Ddf_data.default_optimizer_options
    in
    (* a tool as data input to another tool (section 3.3): when a
       compiled simulator is supplied, measure switching activity and
       optimize against it instead of the static power model *)
    let cost =
      match Encapsulation.arg args "evaluator" with
      | None -> None
      | Some evaluator -> (
        match Ddf_data.as_tool evaluator with
        | Ddf_data.Compiled_simulator compiled ->
          let stimuli =
            Stimuli.for_netlist ~n:64 nl
              (Rng.create (Hashtbl.hash (Netlist.hash nl)))
          in
          let toggles = Sim_compiled.run_trace compiled stimuli in
          let activity net =
            match List.assoc_opt net toggles with Some n -> n | None -> 0
          in
          Some
            (Optimize.cost_with_activity opts.Ddf_data.objective ~activity)
        | Ddf_data.Builtin _ | Ddf_data.Scripted_netlist_editor _
        | Ddf_data.Scripted_layout_editor _ | Ddf_data.Scripted_model_editor _
          ->
          Encapsulation.tool_errorf "evaluator must be a compiled simulator")
    in
    let optimized, _report =
      Optimize.run ?cost ~budget:opts.Ddf_data.budget
        ~objective:opts.Ddf_data.objective strategy nl
        (Rng.create (Hashtbl.hash (Netlist.hash nl)))
    in
    [ (E.optimized_netlist, Ddf_data.Netlist optimized) ]
  in
  {
    Encapsulation.key = "optimizer.shared";
    tool_entity = E.optimizer;
    goals = [ E.optimized_netlist ];
    behavior;
    cost_us = (fun args -> 500 + (20 * netlist_cost args E.netlist));
    batched = false;
  }

(* --- composite circuit --------------------------------------------- *)

(* The implicit composition function of the composite circuit entity,
   including its consistency check ("can these device models be used
   with this circuit?"). *)
(* The implicit decomposition function: split a circuit instance back
   into its device models and netlist (section 3.1 notes this is rarely
   needed because composite data is usually stored by reference; here
   the parts come straight out of the payload). *)
let circuit_decomposer value =
  let c = Ddf_data.as_circuit value in
  [
    (E.device_models, Ddf_data.Device_models c.Ddf_data.c_models);
    (E.netlist, Ddf_data.Netlist c.Ddf_data.c_netlist);
  ]

let circuit_composer args =
  let models =
    Ddf_data.as_device_models (Encapsulation.required args E.device_models)
  in
  let nl = netlist_arg args E.netlist in
  if models.Device_model.vdd_mv < 1000 then
    Encapsulation.tool_errorf
      "device models %s cannot drive circuit %s: supply too low"
      models.Device_model.model_name nl.Netlist.name;
  Ddf_data.Circuit { Ddf_data.c_models = models; c_netlist = nl }

let all_encapsulations =
  [
    netlist_editor_enc;
    layout_editor_enc;
    device_model_editor_enc;
    simulator_enc;
    verifier_enc;
    plotter_enc;
    extractor_enc;
    placer_enc;
    pla_generator_enc;
    transistor_expander_enc;
    simulator_compiler_enc;
    compiled_simulator_enc;
    optimizer_enc;
  ]

(* The registry every workspace starts from. *)
let registry () =
  let r = Encapsulation.create_registry () in
  List.iter (Encapsulation.register r) all_encapsulations;
  Encapsulation.register_composer r E.circuit circuit_composer;
  Encapsulation.register_decomposer r E.circuit circuit_decomposer;
  (* several selected stimuli merge into one batched simulation run *)
  Encapsulation.register_merger r E.stimuli (fun payloads ->
      Ddf_data.Stimuli
        (Stimuli.concat (List.map Ddf_data.as_stimuli payloads)));
  r

(* Default tool payloads for tools instantiated from the catalog. *)
let default_tool_payload entity =
  if entity = E.simulator then Some (Ddf_data.Tool (Ddf_data.Builtin "simulator:event"))
  else if entity = E.verifier then Some (Ddf_data.Tool (Ddf_data.Builtin "verifier:lvs"))
  else if entity = E.plotter then Some (Ddf_data.Tool (Ddf_data.Builtin "plotter:ascii"))
  else if entity = E.extractor then Some (Ddf_data.Tool (Ddf_data.Builtin "extractor:geometric"))
  else if entity = E.placer then Some (Ddf_data.Tool (Ddf_data.Builtin "placer:rows"))
  else if entity = E.pla_generator then Some (Ddf_data.Tool (Ddf_data.Builtin "pla_generator:qm"))
  else if entity = E.transistor_expander then
    Some (Ddf_data.Tool (Ddf_data.Builtin "transistor_expander:cmos"))
  else if entity = E.simulator_compiler then
    Some (Ddf_data.Tool (Ddf_data.Builtin "simulator_compiler:levelized"))
  else None
