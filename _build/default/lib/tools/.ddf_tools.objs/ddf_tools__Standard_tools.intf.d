lib/tools/standard_tools.mli: Ddf_data Encapsulation
