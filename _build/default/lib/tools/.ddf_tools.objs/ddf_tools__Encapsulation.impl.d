lib/tools/encapsulation.ml: Ddf_data Ddf_schema Format Hashtbl List Schema
