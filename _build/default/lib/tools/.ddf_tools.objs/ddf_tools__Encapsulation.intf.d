lib/tools/encapsulation.mli: Ddf_data Ddf_schema Format Schema
