(** Encapsulations for every tool of the odyssey schema, binding the
    Fig. 1 / Fig. 2 entities to the substrate implementations. *)

val netlist_editor_enc : Encapsulation.t
val layout_editor_enc : Encapsulation.t
val device_model_editor_enc : Encapsulation.t
val simulator_enc : Encapsulation.t
val verifier_enc : Encapsulation.t
val plotter_enc : Encapsulation.t

val extractor_enc : Encapsulation.t
(** One invocation, two co-produced outputs (Fig. 5): the extracted
    netlist and the extraction statistics. *)

val placer_enc : Encapsulation.t
val pla_generator_enc : Encapsulation.t
val transistor_expander_enc : Encapsulation.t
val simulator_compiler_enc : Encapsulation.t

val compiled_simulator_enc : Encapsulation.t
(** The tool instance itself carries the compiled program (Fig. 2). *)

val optimizer_enc : Encapsulation.t
(** One encapsulation shared by the three optimizer tool instances
    (section 3.3); the [Builtin "optimizer:<strategy>"] payload selects
    the algorithm. *)

val all_encapsulations : Encapsulation.t list

val registry : unit -> Encapsulation.registry
(** The registry every workspace starts from, with the circuit
    composer and decomposer installed. *)

val default_tool_payload : string -> Ddf_data.value option
(** Catalog payload for a primitive tool entity, if it has one. *)
