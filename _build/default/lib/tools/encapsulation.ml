(* Tool encapsulations: the binding between schema entities and the
   substrate's actual tool behaviours.

   An encapsulation serves (tool entity, goal entity) pairs.  Several
   tools may share one encapsulation (the three statistical optimizers
   of section 3.3); one tool may have several behaviours, distinguished
   by goal entity or by the tool instance's own data (multi-function
   tools); and tool instances created during the design -- the compiled
   simulator -- carry their behaviour in their payload. *)

open Ddf_schema

type args = (string * Ddf_data.value) list
(* role -> payload; optional roles absent when unfilled *)

type outcome = (string * Ddf_data.value) list
(* goal entity -> produced payload; one entry per co-produced output *)

exception Tool_error of string

let tool_errorf fmt = Format.kasprintf (fun s -> raise (Tool_error s)) fmt

type t = {
  key : string;                             (* unique registry key *)
  tool_entity : string;
  goals : string list;                      (* [] accepts any goal *)
  behavior : tool:Ddf_data.value -> goals:string list -> args -> outcome;
  (* simulated execution cost in microseconds, for the machine-pool
     scheduler of Fig. 6 *)
  cost_us : args -> int;
  (* Batched encapsulations receive all selected instances in one call;
     per-instance ones run once per selection (section 4.1). *)
  batched : bool;
}

let arg args role = List.assoc_opt role args

let required args role =
  match arg args role with
  | Some v -> v
  | None -> tool_errorf "missing required argument %S" role

type registry = {
  encapsulations : (string, t) Hashtbl.t;      (* key -> encapsulation *)
  by_tool : (string, string list ref) Hashtbl.t;  (* tool entity -> keys *)
  composers :
    (string, args -> Ddf_data.value) Hashtbl.t;  (* composite entity -> fn *)
  (* the implicit decomposition function of a composite entity: split an
     instance's data into its component parts (section 3.1) *)
  decomposers :
    (string, Ddf_data.value -> (string * Ddf_data.value) list) Hashtbl.t;
  (* batched tool calls (section 4.1): merge several selected instances
     of a root entity into one payload for a single invocation *)
  mergers : (string, Ddf_data.value list -> Ddf_data.value) Hashtbl.t;
}

let create_registry () =
  {
    encapsulations = Hashtbl.create 16;
    by_tool = Hashtbl.create 16;
    composers = Hashtbl.create 4;
    decomposers = Hashtbl.create 4;
    mergers = Hashtbl.create 4;
  }

let register registry enc =
  if Hashtbl.mem registry.encapsulations enc.key then
    tool_errorf "encapsulation %S already registered" enc.key;
  Hashtbl.add registry.encapsulations enc.key enc;
  let keys =
    match Hashtbl.find_opt registry.by_tool enc.tool_entity with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add registry.by_tool enc.tool_entity l;
      l
  in
  keys := enc.key :: !keys

let register_composer registry entity fn =
  Hashtbl.replace registry.composers entity fn

let find_composer registry entity =
  match Hashtbl.find_opt registry.composers entity with
  | Some fn -> fn
  | None -> tool_errorf "no composer registered for %s" entity

let register_decomposer registry entity fn =
  Hashtbl.replace registry.decomposers entity fn

let find_decomposer registry entity =
  match Hashtbl.find_opt registry.decomposers entity with
  | Some fn -> fn
  | None -> tool_errorf "no decomposer registered for %s" entity

let register_merger registry root_entity fn =
  Hashtbl.replace registry.mergers root_entity fn

let find_merger registry root_entity =
  Hashtbl.find_opt registry.mergers root_entity

(* Resolve the encapsulation serving a tool entity (or an ancestor of
   it, so tool subtypes inherit encapsulations) and a goal entity. *)
let resolve registry schema ~tool_entity ~goal =
  let candidates tool =
    match Hashtbl.find_opt registry.by_tool tool with
    | Some keys ->
      List.filter_map (Hashtbl.find_opt registry.encapsulations) !keys
    | None -> []
  in
  let rec search tool =
    let matching =
      List.filter
        (fun enc ->
          enc.goals = []
          || List.exists
               (fun g -> Schema.is_subtype schema ~sub:goal ~super:g)
               enc.goals)
        (candidates tool)
    in
    match matching with
    | enc :: _ -> enc
    | [] -> (
      match Schema.parent_of schema tool with
      | Some parent -> search parent
      | None ->
        tool_errorf "no encapsulation for tool %s producing %s" tool_entity goal)
  in
  search tool_entity

let keys registry =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry.encapsulations []
  |> List.sort compare
