(* Task graphs: the representation of dynamically defined flows
   (paper section 3.2).

   A task graph is a DAG whose nodes each correspond to an entity of a
   task schema and whose edges each correspond to a dependency of the
   entity's construction rule.  Tools are nodes like any other -- "we
   are treating the tool as just another parameter".  The graph is a
   persistent value: expand / specialize / unexpand return new graphs,
   which keeps designer-driven trial and error (and undo) cheap. *)

open Ddf_schema

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type edge = {
  role : string;
  dep_kind : Schema.dep_kind;
  dst : int;
}

type node = {
  nid : int;
  entity : string;
}

type t = {
  schema : Schema.t;
  nodes : node Int_map.t;
  out_edges : edge list Int_map.t;   (* node -> its dependencies *)
  in_edges : (int * string) list Int_map.t;  (* node -> (user, role) *)
  next_id : int;
}

exception Graph_error of string
exception Needs_specialization of string * string list

let graph_errorf fmt = Format.kasprintf (fun s -> raise (Graph_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let empty schema =
  { schema; nodes = Int_map.empty; out_edges = Int_map.empty;
    in_edges = Int_map.empty; next_id = 0 }

let schema g = g.schema
let mem g nid = Int_map.mem nid g.nodes

let find g nid =
  match Int_map.find_opt nid g.nodes with
  | Some n -> n
  | None -> graph_errorf "no node %d in task graph" nid

let entity_of g nid = (find g nid).entity
let nodes g = List.map snd (Int_map.bindings g.nodes)
let node_ids g = List.map fst (Int_map.bindings g.nodes)
let size g = Int_map.cardinal g.nodes

let out_edges g nid =
  ignore (find g nid);
  match Int_map.find_opt nid g.out_edges with Some es -> List.rev es | None -> []

let in_edges g nid =
  ignore (find g nid);
  match Int_map.find_opt nid g.in_edges with Some es -> List.rev es | None -> []

let dep_of g nid role =
  List.find_opt (fun e -> e.role = role) (out_edges g nid)
  |> Option.map (fun e -> e.dst)

let users g nid = List.map fst (in_edges g nid)

let roots g =
  List.filter (fun n -> in_edges g n.nid = []) (nodes g) |> List.map (fun n -> n.nid)

let leaves g =
  List.filter (fun n -> out_edges g n.nid = []) (nodes g) |> List.map (fun n -> n.nid)

let add_node g entity =
  ignore (Schema.find g.schema entity);
  let nid = g.next_id in
  let node = { nid; entity } in
  ( { g with nodes = Int_map.add nid node g.nodes; next_id = nid + 1 }, nid )

let create schema entity =
  let g, nid = add_node (empty schema) entity in
  (g, nid)

(* ------------------------------------------------------------------ *)
(* Reachability and ordering                                           *)
(* ------------------------------------------------------------------ *)

let reachable g start =
  let rec go seen = function
    | [] -> seen
    | nid :: rest ->
      if Int_set.mem nid seen then go seen rest
      else
        let succs = List.map (fun e -> e.dst) (out_edges g nid) in
        go (Int_set.add nid seen) (succs @ rest)
  in
  go Int_set.empty [ start ]

let disjoint g a b =
  Int_set.is_empty (Int_set.inter (reachable g a) (reachable g b))

(* Dependencies-first order; ties broken by node id for determinism. *)
let topological_order g =
  let out_degree = Hashtbl.create (size g) in
  List.iter
    (fun n -> Hashtbl.replace out_degree n.nid (List.length (out_edges g n.nid)))
    (nodes g);
  let module Pq = Set.Make (Int) in
  let ready =
    List.fold_left
      (fun acc n ->
        if Hashtbl.find out_degree n.nid = 0 then Pq.add n.nid acc else acc)
      Pq.empty (nodes g)
  in
  let rec drain ready acc =
    match Pq.min_elt_opt ready with
    | None -> List.rev acc
    | Some nid ->
      let ready = Pq.remove nid ready in
      let ready =
        List.fold_left
          (fun ready (user, _role) ->
            let d = Hashtbl.find out_degree user - 1 in
            Hashtbl.replace out_degree user d;
            if d = 0 then Pq.add user ready else ready)
          ready (in_edges g nid)
      in
      drain ready (nid :: acc)
  in
  let order = drain ready [] in
  if List.length order <> size g then
    graph_errorf "task graph contains a cycle"
  else order

(* ------------------------------------------------------------------ *)
(* Construction operations                                             *)
(* ------------------------------------------------------------------ *)

let rule_of g nid =
  let entity = entity_of g nid in
  match Schema.construction_rule g.schema entity with
  | Schema.Abstract subs -> raise (Needs_specialization (entity, subs))
  | (Schema.Constructed _ | Schema.Source) as r -> r

let find_role g nid role =
  match rule_of g nid with
  | Schema.Abstract _ -> assert false (* rule_of raised *)
  | Schema.Source ->
    graph_errorf "entity %s is a source and has no dependencies" (entity_of g nid)
  | Schema.Constructed deps -> (
    match List.find_opt (fun (d : Schema.dep) -> d.role = role) deps with
    | Some d -> d
    | None ->
      graph_errorf "entity %s has no dependency role %S" (entity_of g nid) role)

(* Bulk construction: all nodes and edges at once, validated with a
   single topological pass instead of per-edge reachability checks, so
   large graphs -- notably flow traces rebuilt from deep histories --
   assemble in near-linear time. *)
let of_parts schema node_list edge_list =
  let g =
    List.fold_left
      (fun g (nid, entity) ->
        ignore (Schema.find schema entity);
        if Int_map.mem nid g.nodes then
          graph_errorf "duplicate node id %d" nid;
        { g with
          nodes = Int_map.add nid { nid; entity } g.nodes;
          next_id = max g.next_id (nid + 1) })
      (empty schema) node_list
  in
  let g =
    List.fold_left
      (fun g (user, role, dep) ->
        if not (mem g user) then graph_errorf "edge from missing node %d" user;
        if not (mem g dep) then graph_errorf "edge to missing node %d" dep;
        let decl = find_role g user role in
        let dep_entity = entity_of g dep in
        if not (Schema.is_subtype g.schema ~sub:dep_entity ~super:decl.target)
        then
          graph_errorf "role %S of %s requires %s, not %s" role
            (entity_of g user) decl.target dep_entity;
        if dep_of g user role <> None then
          graph_errorf "role %S of node %d is already filled" role user;
        let edge = { role; dep_kind = decl.dep_kind; dst = dep } in
        let outs = match Int_map.find_opt user g.out_edges with
          | Some es -> es | None -> [] in
        let ins = match Int_map.find_opt dep g.in_edges with
          | Some es -> es | None -> [] in
        { g with
          out_edges = Int_map.add user (edge :: outs) g.out_edges;
          in_edges = Int_map.add dep ((user, role) :: ins) g.in_edges })
      g edge_list
  in
  ignore (topological_order g);
  g

let connect g ~user ~role ~dep =
  let decl = find_role g user role in
  let dep_entity = entity_of g dep in
  if not (Schema.is_subtype g.schema ~sub:dep_entity ~super:decl.target) then
    graph_errorf "role %S of %s requires %s, not %s" role (entity_of g user)
      decl.target dep_entity;
  if dep_of g user role <> None then
    graph_errorf "role %S of node %d is already filled" role user;
  if Int_set.mem user (reachable g dep) then
    graph_errorf "connecting %d -%s-> %d would create a cycle" user role dep;
  let edge = { role; dep_kind = decl.dep_kind; dst = dep } in
  let outs = match Int_map.find_opt user g.out_edges with
    | Some es -> es | None -> [] in
  let ins = match Int_map.find_opt dep g.in_edges with
    | Some es -> es | None -> [] in
  { g with
    out_edges = Int_map.add user (edge :: outs) g.out_edges;
    in_edges = Int_map.add dep ((user, role) :: ins) g.in_edges }

let specialize g nid subtype =
  let current = entity_of g nid in
  if subtype = current then g
  else begin
    if not (Schema.is_subtype g.schema ~sub:subtype ~super:current) then
      graph_errorf "%s is not a subtype of %s" subtype current;
    (* Existing dependency edges must remain legal under the new rule. *)
    let new_deps = Schema.effective_deps g.schema subtype in
    let check (e : edge) =
      match List.find_opt (fun (d : Schema.dep) -> d.role = e.role) new_deps with
      | None ->
        graph_errorf "specializing to %s drops filled role %S" subtype e.role
      | Some d ->
        let dep_entity = entity_of g e.dst in
        if not (Schema.is_subtype g.schema ~sub:dep_entity ~super:d.target) then
          graph_errorf "specializing to %s: role %S no longer accepts %s"
            subtype e.role dep_entity
    in
    List.iter check (out_edges g nid);
    let node = { (find g nid) with entity = subtype } in
    { g with nodes = Int_map.add nid node g.nodes }
  end

(* Downward expansion: incorporate the primitive task constructing
   [nid], creating fresh nodes for unfilled roles, or reusing nodes the
   designer designates (entity reuse, Fig. 5). *)
let expand ?(include_optional = true) ?(reuse = []) g nid =
  match rule_of g nid with
  | Schema.Abstract _ -> assert false (* rule_of raised *)
  | Schema.Source ->
    graph_errorf "cannot expand %s: it is a source entity" (entity_of g nid)
  | Schema.Constructed deps ->
    let wanted (d : Schema.dep) =
      dep_of g nid d.role = None
      && (include_optional
          ||
          match d.dep_kind with
          | Schema.Functional | Schema.Data_dep { optional = false } -> true
          | Schema.Data_dep { optional = true } -> false)
    in
    let step (g, fresh) (d : Schema.dep) =
      match List.assoc_opt d.role reuse with
      | Some existing -> (connect g ~user:nid ~role:d.role ~dep:existing, fresh)
      | None ->
        let g, new_nid = add_node g d.target in
        (connect g ~user:nid ~role:d.role ~dep:new_nid, new_nid :: fresh)
    in
    let g, fresh = List.fold_left step (g, []) (List.filter wanted deps) in
    (g, List.rev fresh)

(* Upward expansion: incorporate a task that consumes [nid].  The
   consumer node is created and its remaining dependencies expanded, so
   the flow always grows by whole primitive tasks. *)
let expand_up ?role ?(include_optional = true) ?(reuse = []) g nid ~consumer =
  let entity = entity_of g nid in
  let candidates =
    List.filter
      (fun (cid, (_ : Schema.dep)) -> cid = consumer)
      (Schema.consuming_roles g.schema entity)
  in
  let chosen =
    match (role, candidates) with
    | _, [] ->
      graph_errorf "%s does not consume %s" consumer entity
    | None, [ (_, d) ] -> d
    | None, _ ->
      graph_errorf "%s consumes %s through several roles; pick one" consumer
        entity
    | Some r, _ -> (
      match
        List.find_opt (fun (_, (d : Schema.dep)) -> d.role = r) candidates
      with
      | Some (_, d) -> d
      | None -> graph_errorf "%s has no role %S accepting %s" consumer r entity)
  in
  let g, cnid = add_node g consumer in
  let g = connect g ~user:cnid ~role:chosen.role ~dep:nid in
  let g, fresh = expand ~include_optional ~reuse g cnid in
  (g, cnid, fresh)

(* Remove the sub-flow below [nid]: cut its dependency edges, then drop
   every node no longer reachable from the graph's previous roots. *)
let unexpand g nid =
  let anchors = roots g in
  let anchors = if List.mem nid anchors then anchors else nid :: anchors in
  let cut =
    let outs = out_edges g nid in
    let in_edges =
      List.fold_left
        (fun acc (e : edge) ->
          let ins = match Int_map.find_opt e.dst acc with
            | Some es -> es | None -> [] in
          Int_map.add e.dst
            (List.filter (fun (u, r) -> not (u = nid && r = e.role)) ins)
            acc)
        g.in_edges outs
    in
    { g with out_edges = Int_map.remove nid g.out_edges; in_edges }
  in
  let live =
    List.fold_left
      (fun acc a -> Int_set.union acc (reachable cut a))
      Int_set.empty anchors
  in
  let keep nid _ = Int_set.mem nid live in
  { cut with
    nodes = Int_map.filter keep cut.nodes;
    out_edges = Int_map.filter keep cut.out_edges;
    in_edges =
      Int_map.filter keep cut.in_edges
      |> Int_map.map (List.filter (fun (u, _) -> Int_set.mem u live)) }

(* ------------------------------------------------------------------ *)
(* Status                                                              *)
(* ------------------------------------------------------------------ *)

type status =
  | Source_leaf        (* no construction rule: select an instance *)
  | Unexpanded         (* constructible, nothing filled yet *)
  | Partial of string list  (* mandatory roles still unfilled *)
  | Expanded           (* all mandatory roles filled *)

let status g nid =
  match Schema.construction_rule g.schema (entity_of g nid) with
  | Schema.Source -> Source_leaf
  | Schema.Abstract _ -> Unexpanded
  | Schema.Constructed deps ->
    let filled = List.map (fun e -> e.role) (out_edges g nid) in
    let missing =
      List.filter_map
        (fun (d : Schema.dep) ->
          match d.dep_kind with
          | Schema.Data_dep { optional = true } -> None
          | Schema.Functional | Schema.Data_dep { optional = false } ->
            if List.mem d.role filled then None else Some d.role)
        deps
    in
    if filled = [] then Unexpanded
    else if missing <> [] then Partial missing
    else Expanded

(* A flow is complete when every node is either a filled task or a leaf
   awaiting instance selection. *)
let complete g =
  List.for_all
    (fun n ->
      match status g n.nid with
      | Source_leaf | Expanded -> true
      | Unexpanded -> out_edges g n.nid = [] (* leaf: instance selectable *)
      | Partial _ -> false)
    (nodes g)

(* ------------------------------------------------------------------ *)
(* Invocations: grouping co-produced outputs                           *)
(* ------------------------------------------------------------------ *)

type invocation = {
  outputs : int list;
  tool : int option;             (* None for composite entities *)
  inputs : (string * int) list;  (* data-dependency bindings *)
}

(* Derived nodes sharing the same tool node and the same data-input
   nodes belong to a single task invocation (Fig. 5: the extractor
   produces the extracted netlist and its statistics in one run). *)
let invocations g =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let classify n =
    let outs = out_edges g n.nid in
    if outs = [] then ()
    else begin
      let tool =
        List.find_opt (fun e -> e.dep_kind = Schema.Functional) outs
        |> Option.map (fun e -> e.dst)
      in
      let inputs =
        List.filter (fun e -> e.dep_kind <> Schema.Functional) outs
        |> List.map (fun e -> (e.role, e.dst))
      in
      let key = (tool, List.sort compare (List.map snd inputs)) in
      match Hashtbl.find_opt tbl key with
      | Some inv -> Hashtbl.replace tbl key { inv with outputs = n.nid :: inv.outputs }
      | None ->
        order := key :: !order;
        Hashtbl.add tbl key { outputs = [ n.nid ]; tool; inputs }
    end
  in
  List.iter classify (nodes g);
  List.rev_map
    (fun key ->
      let inv = Hashtbl.find tbl key in
      { inv with outputs = List.sort compare inv.outputs })
    !order

(* ------------------------------------------------------------------ *)
(* Subflows                                                            *)
(* ------------------------------------------------------------------ *)

let subflow g nid =
  let live = reachable g nid in
  let keep n _ = Int_set.mem n live in
  { g with
    nodes = Int_map.filter keep g.nodes;
    out_edges = Int_map.filter keep g.out_edges;
    in_edges =
      Int_map.filter keep g.in_edges
      |> Int_map.map (List.filter (fun (u, _) -> Int_set.mem u live)) }

(* The independently executable branches below a root: maximal disjoint
   sub-flows, one per dependency subtree that shares nothing (Fig. 6). *)
let disjoint_branches g root =
  let children = List.map (fun e -> e.dst) (out_edges g root) in
  (* Fold each child's reachable set into the groups it overlaps. *)
  let absorb groups (c, s) =
    let overlaps (_, s') = not (Int_set.is_empty (Int_set.inter s s')) in
    let hit, miss = List.partition overlaps groups in
    let members = c :: List.concat_map fst hit in
    let s = List.fold_left (fun s (_, s') -> Int_set.union s s') s hit in
    (members, s) :: miss
  in
  List.map (fun c -> (c, reachable g c)) children
  |> List.fold_left absorb []
  |> List.rev_map (fun (members, s) -> (List.sort compare members, s))

(* ------------------------------------------------------------------ *)
(* Validation (used by property tests)                                 *)
(* ------------------------------------------------------------------ *)

let validate g =
  ignore (topological_order g);
  let check_node n =
    ignore (Schema.find g.schema n.entity);
    let seen = Hashtbl.create 4 in
    let check_edge (e : edge) =
      if Hashtbl.mem seen e.role then
        graph_errorf "node %d fills role %S twice" n.nid e.role;
      Hashtbl.add seen e.role ();
      if not (mem g e.dst) then
        graph_errorf "node %d depends on missing node %d" n.nid e.dst;
      let decl =
        match
          List.find_opt
            (fun (d : Schema.dep) -> d.role = e.role)
            (Schema.effective_deps g.schema n.entity)
        with
        | Some d -> d
        | None ->
          graph_errorf "node %d (%s) fills undeclared role %S" n.nid n.entity
            e.role
      in
      if not
           (Schema.is_subtype g.schema ~sub:(entity_of g e.dst)
              ~super:decl.target)
      then
        graph_errorf "node %d role %S holds incompatible entity %s" n.nid
          e.role (entity_of g e.dst)
    in
    List.iter check_edge (out_edges g n.nid)
  in
  List.iter check_node (nodes g);
  (* in_edges must mirror out_edges *)
  List.iter
    (fun n ->
      List.iter
        (fun (e : edge) ->
          if not (List.mem (n.nid, e.role) (in_edges g e.dst)) then
            graph_errorf "in/out edge tables disagree at node %d" n.nid)
        (out_edges g n.nid))
    (nodes g)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_node ppf n = Fmt.pf ppf "[%d:%s]" n.nid n.entity

(* Task-graph rendering in the style of Fig. 3(b): an indented tree
   from each root, with shared nodes printed once and referenced by id
   afterwards. *)
let to_ascii g =
  let buf = Buffer.create 256 in
  let printed = Hashtbl.create 16 in
  let rec render indent role_label nid =
    let n = find g nid in
    let label =
      if role_label = "" then Printf.sprintf "%s#%d" n.entity n.nid
      else Printf.sprintf "%s: %s#%d" role_label n.entity n.nid
    in
    if Hashtbl.mem printed nid then
      Buffer.add_string buf (Printf.sprintf "%s%s (shared)\n" indent label)
    else begin
      Hashtbl.add printed nid ();
      Buffer.add_string buf (Printf.sprintf "%s%s\n" indent label);
      List.iter
        (fun (e : edge) ->
          let tag =
            match e.dep_kind with
            | Schema.Functional -> "f/" ^ e.role
            | Schema.Data_dep { optional = true } -> "d?/" ^ e.role
            | Schema.Data_dep { optional = false } -> "d/" ^ e.role
          in
          render (indent ^ "  ") tag e.dst)
        (out_edges g nid)
    end
  in
  List.iter (render "" "") (roots g);
  Buffer.contents buf

let to_dot g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph flow {\n";
  List.iter
    (fun n ->
      let shape =
        match Schema.kind_of g.schema n.entity with
        | Schema.Tool -> "ellipse"
        | Schema.Design_data -> "box"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s#%d\",shape=%s];\n" n.nid n.entity
           n.nid shape))
    (nodes g);
  List.iter
    (fun n ->
      List.iter
        (fun (e : edge) ->
          let style =
            match e.dep_kind with
            | Schema.Functional -> "bold"
            | Schema.Data_dep { optional = true } -> "dashed"
            | Schema.Data_dep { optional = false } -> "solid"
          in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=%S,style=%s];\n" n.nid e.dst
               e.role style))
        (out_edges g n.nid))
    (nodes g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g = Fmt.string ppf (to_ascii g)
