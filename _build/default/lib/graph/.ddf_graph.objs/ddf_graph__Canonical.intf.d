lib/graph/canonical.mli: Hashtbl Task_graph
