lib/graph/sexp_form.mli: Ddf_schema Schema Task_graph
