lib/graph/task_graph.mli: Ddf_schema Format Schema Set
