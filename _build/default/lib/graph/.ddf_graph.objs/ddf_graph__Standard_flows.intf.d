lib/graph/standard_flows.mli: Ddf_schema Task_graph
