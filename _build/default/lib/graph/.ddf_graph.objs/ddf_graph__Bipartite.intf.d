lib/graph/bipartite.mli: Ddf_schema Schema Task_graph
