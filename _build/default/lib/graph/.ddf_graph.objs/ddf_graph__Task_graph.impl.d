lib/graph/task_graph.ml: Buffer Ddf_schema Fmt Format Hashtbl Int List Map Option Printf Schema Set
