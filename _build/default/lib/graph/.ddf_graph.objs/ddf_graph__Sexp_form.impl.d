lib/graph/sexp_form.ml: Buffer Ddf_schema Format Hashtbl List Printf Schema String Task_graph
