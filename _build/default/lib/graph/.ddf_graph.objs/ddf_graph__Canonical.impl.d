lib/graph/canonical.ml: Buffer Hashtbl List Printf String Task_graph
