lib/graph/standard_flows.ml: Ddf_schema List Task_graph
