lib/graph/bipartite.ml: Buffer Ddf_schema Hashtbl List Printf Schema String Task_graph
