(** The traditional bipartite flow diagram (Fig. 3(a)).

    A flowmap alternates activity boxes with data items and hardwires a
    tool into each activity.  It cannot express a tool that is itself
    created by the flow (Fig. 2); conversion reports such derived tools
    as lost structure, which experiment E3 measures. *)

open Ddf_schema

type activity = {
  act_tool : string option;           (** [None]: implicit composition *)
  act_inputs : (string * int) list;   (** role -> datum id *)
  act_outputs : (string * int) list;  (** entity -> datum id *)
}

type t = {
  data : (int * string) list;         (** datum id -> entity *)
  activities : activity list;
  derived_tools : string list;        (** structure a flowmap drops *)
}

exception Bipartite_error of string

val of_graph : Task_graph.t -> t
(** Total: derived tools are recorded in [derived_tools] rather than
    failing. *)

val lossless : t -> bool

val to_graph : Schema.t -> t -> Task_graph.t
(** Reconstruction instantiates a fresh tool node per activity —
    exactly the hardwiring the paper criticises.  Round-trips exactly
    the {!lossless} flowmaps.
    @raise Bipartite_error on dangling data references. *)

val to_ascii : t -> string
val size : t -> int
