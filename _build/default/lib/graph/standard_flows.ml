(* Builders for the flows appearing in the paper's figures, all over
   the odyssey schema.  Examples, tests and benchmarks share them. *)

module E = Ddf_schema.Standard_schemas.E

let schema = Ddf_schema.Standard_schemas.odyssey

(* Fig. 3 / footnote 2:
   synthesized_layout (placer, edited_netlist (netlist_editor, netlist),
                       placement_options). *)
type fig3 = {
  f3_graph : Task_graph.t;
  f3_layout : int;
  f3_placer : int;
  f3_netlist : int;          (* the edited netlist feeding the placer *)
  f3_source_netlist : int;   (* the optional input of the editor *)
  f3_options : int;
}

let fig3 () =
  let g, layout = Task_graph.create schema E.synthesized_layout in
  let g, fresh = Task_graph.expand g layout in
  let placer, netlist, options =
    match fresh with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let g = Task_graph.specialize g netlist E.edited_netlist in
  let g, fresh = Task_graph.expand g netlist in
  let editor, source =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  ignore editor;
  { f3_graph = g; f3_layout = layout; f3_placer = placer; f3_netlist = netlist;
    f3_source_netlist = source; f3_options = options }

(* Fig. 4(a): expand the source netlist as another editing step. *)
let fig4a () =
  let f = fig3 () in
  let g = Task_graph.specialize f.f3_graph f.f3_source_netlist E.edited_netlist in
  let g, _ = Task_graph.expand g f.f3_source_netlist in
  { f with f3_graph = g }

(* Fig. 4(b): specialize the source netlist to an extracted netlist
   before expansion, pulling in the extractor and a layout. *)
let fig4b () =
  let f = fig3 () in
  let g =
    Task_graph.specialize f.f3_graph f.f3_source_netlist E.extracted_netlist
  in
  let g, _ = Task_graph.expand g f.f3_source_netlist in
  { f with f3_graph = g }

(* Fig. 5: a complex flow with entity reuse and multiple outputs.

   A layout is extracted (one invocation producing both the extracted
   netlist and extraction statistics); the extracted netlist is reused
   by a circuit (simulated and plotted) and by a verification against a
   reference netlist. *)
type fig5 = {
  f5_graph : Task_graph.t;
  f5_layout : int;
  f5_extractor : int;
  f5_extracted : int;
  f5_statistics : int;
  f5_device_models : int;
  f5_circuit : int;
  f5_stimuli : int;
  f5_performance : int;
  f5_plot : int;
  f5_verification : int;
  f5_reference : int;
}

let fig5 () =
  let g, extracted = Task_graph.create schema E.extracted_netlist in
  let g, fresh = Task_graph.expand g extracted in
  let extractor, layout =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  (* Second output of the same invocation: reuse tool and input. *)
  let g, statistics = Task_graph.add_node g E.extraction_statistics in
  let g = Task_graph.connect g ~user:statistics ~role:"tool" ~dep:extractor in
  let g = Task_graph.connect g ~user:statistics ~role:E.layout ~dep:layout in
  (* Circuit reusing the extracted netlist. *)
  let g, circuit, fresh =
    Task_graph.expand_up g extracted ~consumer:E.circuit
      ~reuse:[ (E.netlist, extracted) ]
  in
  let device_models = match fresh with [ m ] -> m | _ -> assert false in
  (* Simulation of the circuit. *)
  let g, performance, fresh =
    Task_graph.expand_up ~include_optional:false g circuit
      ~consumer:E.performance
  in
  let stimuli =
    match
      List.filter (fun n -> Task_graph.entity_of g n = E.stimuli) fresh
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let g, plot, _ =
    Task_graph.expand_up g performance ~consumer:E.performance_plot
  in
  (* Verification reusing the extracted netlist as candidate. *)
  let g, verification = Task_graph.add_node g E.verification in
  let g =
    Task_graph.connect g ~user:verification ~role:"candidate" ~dep:extracted
  in
  let g, fresh = Task_graph.expand g verification in
  let reference =
    match
      List.filter (fun n -> Task_graph.entity_of g n = E.netlist) fresh
    with
    | [ r ] -> r
    | _ -> assert false
  in
  { f5_graph = g; f5_layout = layout; f5_extractor = extractor;
    f5_extracted = extracted; f5_statistics = statistics;
    f5_device_models = device_models; f5_circuit = circuit;
    f5_stimuli = stimuli; f5_performance = performance; f5_plot = plot;
    f5_verification = verification; f5_reference = reference }

(* Fig. 6: a flow whose branches under the root share no node, so they
   may execute in parallel: a verification whose two netlists are each
   extracted from a different layout. *)
type fig6 = {
  f6_graph : Task_graph.t;
  f6_verification : int;
  f6_branch_a : int list;    (* nodes of the first disjoint branch *)
  f6_branch_b : int list;
}

let fig6 () =
  let g, verification = Task_graph.create schema E.verification in
  let extract_branch g role =
    let g, extracted = Task_graph.add_node g E.extracted_netlist in
    let g = Task_graph.connect g ~user:verification ~role ~dep:extracted in
    let g, _ = Task_graph.expand g extracted in
    g
  in
  let g = extract_branch g "reference" in
  let g = extract_branch g "candidate" in
  (* fill the remaining role of the root: the verifier tool *)
  let g, _ = Task_graph.expand g verification in
  let branches = Task_graph.disjoint_branches g verification in
  let sorted_sets =
    List.filter_map
      (fun (_, s) ->
        (* drop the trivial branch holding only the verifier tool *)
        if Task_graph.Int_set.cardinal s > 1 then
          Some (Task_graph.Int_set.elements s)
        else None)
      branches
  in
  match sorted_sets with
  | [ a; b ] ->
    { f6_graph = g; f6_verification = verification; f6_branch_a = a;
      f6_branch_b = b }
  | _ -> assert false

(* Fig. 8(a): synthesize the physical view from the transistor view. *)
type fig8a = {
  f8a_graph : Task_graph.t;
  f8a_layout : int;
  f8a_netlist : int;
}

let fig8a () =
  let g, layout = Task_graph.create schema E.synthesized_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g layout in
  let netlist =
    match
      List.filter (fun n -> Task_graph.entity_of g n = E.netlist) fresh
    with
    | [ x ] -> x
    | _ -> assert false
  in
  { f8a_graph = g; f8a_layout = layout; f8a_netlist = netlist }

(* Fig. 8(b): verify that the physical view corresponds to the
   transistor view, by extracting the layout and comparing netlists. *)
type fig8b = {
  f8b_graph : Task_graph.t;
  f8b_verification : int;
  f8b_reference : int;     (* the transistor-view netlist *)
  f8b_layout : int;        (* the physical view being checked *)
  f8b_extracted : int;
}

let fig8b () =
  let g, verification = Task_graph.create schema E.verification in
  let g, fresh = Task_graph.expand g verification in
  let reference, candidate =
    match
      List.filter
        (fun n ->
          Ddf_schema.Schema.is_subtype schema
            ~sub:(Task_graph.entity_of g n) ~super:E.netlist)
        fresh
    with
    | [ a; b ] ->
      (* roles were declared reference-then-candidate *)
      (a, b)
    | _ -> assert false
  in
  let g = Task_graph.specialize g candidate E.extracted_netlist in
  let g, fresh = Task_graph.expand g candidate in
  let layout =
    match
      List.filter (fun n -> Task_graph.entity_of g n = E.layout) fresh
    with
    | [ x ] -> x
    | _ -> assert false
  in
  { f8b_graph = g; f8b_verification = verification; f8b_reference = reference;
    f8b_layout = layout; f8b_extracted = candidate }

(* Fig. 2: the compiled-simulator flow -- the tool is built by the flow
   itself, then applied to stimuli. *)
type fig2 = {
  f2_graph : Task_graph.t;
  f2_performance : int;
  f2_compiled_simulator : int;
  f2_netlist : int;
  f2_stimuli : int;
}

let fig2 () =
  let g, performance = Task_graph.create schema E.switch_performance in
  let g, fresh = Task_graph.expand g performance in
  let simulator, stimuli =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let g, fresh = Task_graph.expand g simulator in
  let netlist =
    match
      List.filter (fun n -> Task_graph.entity_of g n = E.netlist) fresh
    with
    | [ x ] -> x
    | _ -> assert false
  in
  { f2_graph = g; f2_performance = performance;
    f2_compiled_simulator = simulator; f2_netlist = netlist;
    f2_stimuli = stimuli }

(* A deep chain of editing tasks, parameterized for benchmarks. *)
let edit_chain depth =
  let g, top = Task_graph.create schema E.edited_netlist in
  let rec grow g node remaining =
    if remaining = 0 then g
    else
      let g, fresh = Task_graph.expand g node in
      match
        List.filter (fun n -> Task_graph.entity_of g n = E.netlist) fresh
      with
      | [ source ] ->
        let g = Task_graph.specialize g source E.edited_netlist in
        grow g source (remaining - 1)
      | _ -> assert false
  in
  let g = grow g top depth in
  (g, top)

(* A wide flow: [width] independent extraction branches feeding nothing
   in common; used by the parallel-execution benchmarks (Fig. 6). *)
let wide_flow width =
  let g = Task_graph.empty schema in
  let rec grow g acc i =
    if i = width then (g, List.rev acc)
    else
      let g, extracted = Task_graph.add_node g E.extracted_netlist in
      let g, _ = Task_graph.expand g extracted in
      grow g (extracted :: acc) (i + 1)
  in
  grow g [] 0
