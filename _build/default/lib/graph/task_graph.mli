(** Task graphs: dynamically defined flows (paper section 3.2).

    A task graph is a directed acyclic graph with each node
    corresponding to an entity in a task schema and each edge to a
    dependency.  Tool and data nodes are treated uniformly.  The value
    is persistent: every operation returns a new graph, so exploratory
    construction and undo are cheap. *)

open Ddf_schema

type edge = private {
  role : string;
  dep_kind : Schema.dep_kind;
  dst : int;
}

type node = private {
  nid : int;
  entity : string;
}

type t

exception Graph_error of string

exception Needs_specialization of string * string list
(** Raised when expanding a node whose entity has several construction
    methods: the designer must {!specialize} it first (Fig. 4(b)). *)

(** {1 Construction} *)

val empty : Schema.t -> t

val create : Schema.t -> string -> t * int
(** [create schema entity] starts a flow from a single node -- the
    goal-, tool- or data-based entry point all begin here. *)

val add_node : t -> string -> t * int

val of_parts : Schema.t -> (int * string) list -> (int * string * int) list -> t
(** [of_parts schema nodes edges] assembles a whole graph at once:
    nodes are [(id, entity)], edges [(user, role, dependency)].  All
    invariants are checked, with a single topological pass for
    acyclicity, so deep flow traces rebuild in near-linear time.
    @raise Graph_error on violation. *)

val connect : t -> user:int -> role:string -> dep:int -> t
(** Fill role [role] of node [user] with node [dep].
    @raise Graph_error if the role is undeclared, already filled, the
    entities are incompatible, or a cycle would appear. *)

val specialize : t -> int -> string -> t
(** [specialize g n subtype] narrows node [n] to one of its entity's
    subtypes, selecting a construction method. *)

val expand : ?include_optional:bool -> ?reuse:(string * int) list -> t -> int -> t * int list
(** Downward expansion: incorporate the primitive task constructing the
    node.  Fresh nodes are created for unfilled roles, except those the
    designer [reuse]s (entity reuse, Fig. 5).  Returns the new graph and
    fresh node ids.  @raise Needs_specialization for abstract entities. *)

val expand_up :
  ?role:string -> ?include_optional:bool -> ?reuse:(string * int) list ->
  t -> int -> consumer:string -> t * int * int list
(** Upward expansion: incorporate a task that consumes the node.
    Returns graph, the consumer node id, and other fresh nodes. *)

val unexpand : t -> int -> t
(** Remove the sub-flow below a node (the inverse of {!expand}),
    keeping nodes still reachable elsewhere. *)

(** {1 Accessors} *)

val schema : t -> Schema.t
val mem : t -> int -> bool
val find : t -> int -> node
val entity_of : t -> int -> string
val nodes : t -> node list
val node_ids : t -> int list
val size : t -> int
val out_edges : t -> int -> edge list
val in_edges : t -> int -> (int * string) list
val dep_of : t -> int -> string -> int option
val users : t -> int -> int list
val roots : t -> int list
val leaves : t -> int list

(** {1 Analysis} *)

module Int_set : Set.S with type elt = int

val reachable : t -> int -> Int_set.t
val disjoint : t -> int -> int -> bool

val topological_order : t -> int list
(** Dependencies first. @raise Graph_error on a cycle. *)

type status =
  | Source_leaf
  | Unexpanded
  | Partial of string list
  | Expanded

val status : t -> int -> status

val complete : t -> bool
(** Every node is a filled task or a leaf awaiting instance selection:
    the flow may be instantiated and run. *)

type invocation = {
  outputs : int list;
  tool : int option;
  inputs : (string * int) list;
}

val invocations : t -> invocation list
(** Task invocations, grouping co-produced outputs: derived nodes that
    share one tool node and the same input nodes run as a single tool
    call (Fig. 5). Composite entities yield [tool = None]. *)

val subflow : t -> int -> t
(** Induced sub-graph reachable from a node; node ids are preserved.
    A subflow may be run independently whenever its own dependencies
    are satisfied. *)

val disjoint_branches : t -> int -> (int list * Int_set.t) list
(** Partition of the dependency branches under a root into groups that
    share no node: each group can execute in parallel with the others
    (Fig. 6). *)

val validate : t -> unit
(** Recheck every invariant. @raise Graph_error when violated. *)

(** {1 Printing} *)

val pp_node : Format.formatter -> node -> unit
val to_ascii : t -> string
val to_dot : t -> string
val pp : Format.formatter -> t -> unit
