(** Builders for the flows appearing in the paper's figures, over the
    odyssey schema.  Examples, tests and benchmarks share them; each
    record names the interesting nodes for binding. *)

val schema : Ddf_schema.Schema.t
(** {!Ddf_schema.Standard_schemas.odyssey}. *)

(** The Fig. 3 flow: [synthesized_layout (placer, edited_netlist
    (netlist_editor, netlist), placement_options)]. *)
type fig3 = {
  f3_graph : Task_graph.t;
  f3_layout : int;
  f3_placer : int;
  f3_netlist : int;          (** the edited netlist feeding the placer *)
  f3_source_netlist : int;   (** the optional input of the editor *)
  f3_options : int;
}

val fig3 : unit -> fig3

val fig4a : unit -> fig3
(** Fig. 4(a): the source netlist expanded as another editing step. *)

val fig4b : unit -> fig3
(** Fig. 4(b): the source specialized to an extracted netlist before
    expansion. *)

(** Fig. 5: entity reuse and multiple outputs — one extraction feeding
    a simulated circuit, a plot and a verification. *)
type fig5 = {
  f5_graph : Task_graph.t;
  f5_layout : int;
  f5_extractor : int;
  f5_extracted : int;
  f5_statistics : int;
  f5_device_models : int;
  f5_circuit : int;
  f5_stimuli : int;
  f5_performance : int;
  f5_plot : int;
  f5_verification : int;
  f5_reference : int;
}

val fig5 : unit -> fig5

(** Fig. 6: a verification whose two netlists are extracted from
    different layouts — disjoint parallel branches. *)
type fig6 = {
  f6_graph : Task_graph.t;
  f6_verification : int;
  f6_branch_a : int list;
  f6_branch_b : int list;
}

val fig6 : unit -> fig6

(** Fig. 8(a): synthesize the physical view. *)
type fig8a = {
  f8a_graph : Task_graph.t;
  f8a_layout : int;
  f8a_netlist : int;
}

val fig8a : unit -> fig8a

(** Fig. 8(b): verify the physical view by extraction and comparison. *)
type fig8b = {
  f8b_graph : Task_graph.t;
  f8b_verification : int;
  f8b_reference : int;
  f8b_layout : int;
  f8b_extracted : int;
}

val fig8b : unit -> fig8b

(** Fig. 2: the compiled-simulator flow — the tool built by the flow
    itself, then applied to stimuli. *)
type fig2 = {
  f2_graph : Task_graph.t;
  f2_performance : int;
  f2_compiled_simulator : int;
  f2_netlist : int;
  f2_stimuli : int;
}

val fig2 : unit -> fig2

val edit_chain : int -> Task_graph.t * int
(** A chain of editing tasks of the given depth; returns the top node. *)

val wide_flow : int -> Task_graph.t * int list
(** [width] independent extraction branches (the Fig. 6 scaling
    workload); returns the branch roots. *)
