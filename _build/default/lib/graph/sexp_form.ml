(* Textual flow representations (paper Fig. 3 and footnote 2).

   The paper remarks that a task graph is the Lisp representation of a
   flow -- "placement (placer, (circuit_editor, circuit),
   placement_options)" -- where the tool is just another parameter.
   [to_paper_string] renders that exact lossy form; [to_string] /
   [of_string] provide a round-trip form with node ids (so sharing is
   preserved) and role labels (so optional arguments are unambiguous). *)

open Ddf_schema

exception Parse_error of string

let parse_errorf fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Dependency edges in the rule's declaration order, functional first. *)
let ordered_edges g nid =
  let entity = Task_graph.entity_of g nid in
  let rule = Schema.effective_deps (Task_graph.schema g) entity in
  let edges = Task_graph.out_edges g nid in
  let ranked (e : Task_graph.edge) =
    let rec rank i = function
      | [] -> max_int
      | (d : Schema.dep) :: rest -> if d.role = e.role then i else rank (i + 1) rest
    in
    (rank 0 rule, e)
  in
  List.map ranked edges |> List.sort compare |> List.map snd

let to_paper_string g root =
  let buf = Buffer.create 128 in
  let rec render nid =
    Buffer.add_string buf (Task_graph.entity_of g nid);
    match ordered_edges g nid with
    | [] -> ()
    | edges ->
      Buffer.add_string buf " (";
      List.iteri
        (fun i (e : Task_graph.edge) ->
          if i > 0 then Buffer.add_string buf ", ";
          render e.dst)
        edges;
      Buffer.add_char buf ')'
  in
  render root;
  Buffer.contents buf

let to_string g =
  let buf = Buffer.create 256 in
  let printed = Hashtbl.create 16 in
  let rec render nid =
    let entity = Task_graph.entity_of g nid in
    Buffer.add_string buf (Printf.sprintf "%s#%d" entity nid);
    if not (Hashtbl.mem printed nid) then begin
      Hashtbl.add printed nid ();
      match ordered_edges g nid with
      | [] -> ()
      | edges ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i (e : Task_graph.edge) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf e.role;
            Buffer.add_char buf '=';
            render e.dst)
          edges;
        Buffer.add_char buf ')'
    end
  in
  let roots = Task_graph.roots g in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf "; ";
      render r)
    roots;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string
  | Thash_int of int
  | Tlparen
  | Trparen
  | Tcomma
  | Teq
  | Tsemi

let tokenize s =
  let n = String.length s in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlparen :: acc)
      | ')' -> go (i + 1) (Trparen :: acc)
      | ',' -> go (i + 1) (Tcomma :: acc)
      | '=' -> go (i + 1) (Teq :: acc)
      | ';' -> go (i + 1) (Tsemi :: acc)
      | '#' ->
        let j = ref (i + 1) in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
        if !j = i + 1 then parse_errorf "expected digits after '#' at %d" i;
        go !j (Thash_int (int_of_string (String.sub s (i + 1) (!j - i - 1))) :: acc)
      | c when is_ident c ->
        let j = ref i in
        while !j < n && is_ident s.[!j] do incr j done;
        go !j (Tident (String.sub s i (!j - i)) :: acc)
      | c -> parse_errorf "unexpected character %C at offset %d" c i
  in
  go 0 []

(* Grammar:
     flow    := expr (';' expr)*
     expr    := label args?
     args    := '(' binding (',' binding)* ')'
     binding := ident '=' expr
     label   := ident '#' int
   A repeated label refers to the node already built (sharing). *)
let of_string schema s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> parse_errorf "unexpected end of input"
    | t :: rest ->
      toks := rest;
      t
  in
  let expect t =
    let got = next () in
    if got <> t then parse_errorf "unexpected token"
  in
  (* external id -> internal node id *)
  let known = Hashtbl.create 16 in
  let g = ref (Task_graph.empty schema) in
  let rec expr () =
    let entity =
      match next () with
      | Tident e -> e
      | Thash_int _ | Tlparen | Trparen | Tcomma | Teq | Tsemi ->
        parse_errorf "expected an entity name"
    in
    let ext =
      match next () with
      | Thash_int i -> i
      | Tident _ | Tlparen | Trparen | Tcomma | Teq | Tsemi ->
        parse_errorf "expected '#<id>' after entity %s" entity
    in
    let nid, fresh =
      match Hashtbl.find_opt known ext with
      | Some nid ->
        if Task_graph.entity_of !g nid <> entity then
          parse_errorf "node #%d used with two entities" ext;
        (nid, false)
      | None ->
        let g', nid = Task_graph.add_node !g entity in
        g := g';
        Hashtbl.add known ext nid;
        (nid, true)
    in
    (match peek () with
    | Some Tlparen when fresh ->
      expect Tlparen;
      let rec bindings () =
        let role =
          match next () with
          | Tident r -> r
          | Thash_int _ | Tlparen | Trparen | Tcomma | Teq | Tsemi ->
            parse_errorf "expected a role name"
        in
        expect Teq;
        let dep = expr () in
        g := Task_graph.connect !g ~user:nid ~role ~dep;
        match peek () with
        | Some Tcomma ->
          ignore (next ());
          bindings ()
        | Some Trparen | Some (Tident _) | Some (Thash_int _) | Some Tlparen
        | Some Teq | Some Tsemi | None ->
          expect Trparen
      in
      bindings ()
    | Some Tlparen -> parse_errorf "shared node #%d redefined" ext
    | Some (Tident _ | Thash_int _ | Trparen | Tcomma | Teq | Tsemi) | None -> ());
    nid
  in
  let rec flow () =
    ignore (expr ());
    match peek () with
    | Some Tsemi ->
      ignore (next ());
      flow ()
    | Some (Tident _ | Thash_int _ | Tlparen | Trparen | Tcomma | Teq) ->
      parse_errorf "trailing tokens after flow"
    | None -> ()
  in
  flow ();
  !g
