(* Canonical forms for task graphs, used to compare flows up to node
   renumbering (round-trip properties over Fig. 3's representations).

   Every node receives a structural key (its entity plus the keys of
   its dependencies in role order); canonical ids are then assigned in
   a deterministic traversal ordered by those keys, and the graph is
   serialized with sharing explicit.  Graphs with identical canonical
   strings are isomorphic; symmetric sharing between structurally
   identical siblings is the one pattern the keys cannot split, which
   none of the schema-driven flows here exhibit. *)

let structural_keys g =
  let memo = Hashtbl.create 32 in
  let rec key nid =
    match Hashtbl.find_opt memo nid with
    | Some k -> k
    | None ->
      let edges =
        Task_graph.out_edges g nid
        |> List.sort (fun (a : Task_graph.edge) b -> compare a.role b.role)
      in
      let parts =
        List.map (fun (e : Task_graph.edge) -> e.role ^ ":" ^ key e.dst) edges
      in
      let k =
        Task_graph.entity_of g nid ^ "(" ^ String.concat "," parts ^ ")"
      in
      Hashtbl.add memo nid k;
      k
  in
  List.iter (fun nid -> ignore (key nid)) (Task_graph.node_ids g);
  memo

let canonical g =
  let keys = structural_keys g in
  let key nid = Hashtbl.find keys nid in
  let ids = Hashtbl.create 32 in
  let counter = ref 0 in
  let buf = Buffer.create 256 in
  let rec emit nid =
    match Hashtbl.find_opt ids nid with
    | Some cid -> Buffer.add_string buf (Printf.sprintf "@%d" cid)
    | None ->
      let cid = !counter in
      incr counter;
      Hashtbl.add ids nid cid;
      Buffer.add_string buf (Task_graph.entity_of g nid);
      let edges =
        Task_graph.out_edges g nid
        |> List.sort (fun (a : Task_graph.edge) b -> compare a.role b.role)
      in
      if edges <> [] then begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i (e : Task_graph.edge) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf e.role;
            Buffer.add_char buf '=';
            emit e.dst)
          edges;
        Buffer.add_char buf ')'
      end
  in
  let roots =
    Task_graph.roots g
    |> List.sort (fun a b ->
           let c = compare (key a) (key b) in
           if c <> 0 then c else compare a b)
  in
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ';';
      emit r)
    roots;
  Buffer.contents buf

let equal a b = String.equal (canonical a) (canonical b)
