(** Textual flow representations (Fig. 3 and footnote 2).

    The paper notes a task graph is the Lisp reading of a flow —
    ["placement (placer, (circuit_editor, circuit), placement_options)"]
    — treating the tool as just another parameter.
    {!to_paper_string} renders that lossy form; {!to_string} /
    {!of_string} give a round-trip form with node ids (sharing
    preserved) and role labels (optional arguments unambiguous). *)

open Ddf_schema

exception Parse_error of string

val to_paper_string : Task_graph.t -> int -> string
(** The footnote-2 form of the flow rooted at a node: entity names
    only, tool first, dependencies in rule order.  Lossy: sharing and
    node identity are dropped. *)

val to_string : Task_graph.t -> string
(** Round-trip form of the whole graph: [entity#id(role=..., ...)],
    roots separated by [;], shared nodes referenced by id. *)

val of_string : Schema.t -> string -> Task_graph.t
(** Parse the round-trip form, validating against the schema as the
    graph is rebuilt.
    @raise Parse_error on malformed text;
    @raise Task_graph.Graph_error on an illegal flow;
    @raise Schema.Schema_error on unknown entities. *)
