(* The traditional bipartite flow diagram (paper Fig. 3(a)).

   A flowmap alternates activity boxes (a tool behaviour) with data
   items.  The paper's point is that this form hardwires tools into
   activities: it cannot express a tool that is itself created by the
   flow (Fig. 2), whereas a task graph treats the tool as another
   parameter.  Conversion to this form therefore reports such derived
   tools as lost structure. *)

open Ddf_schema

type activity = {
  act_tool : string option;      (* None: an implicit composition *)
  act_inputs : (string * int) list;  (* role -> datum id *)
  act_outputs : (string * int) list; (* role -> datum id *)
}

type t = {
  data : (int * string) list;    (* datum id -> entity *)
  activities : activity list;
  derived_tools : string list;   (* structure a flowmap cannot express *)
}

exception Bipartite_error of string

(* ------------------------------------------------------------------ *)
(* Task graph -> flowmap                                               *)
(* ------------------------------------------------------------------ *)

let of_graph g =
  let sch = Task_graph.schema g in
  let is_data nid =
    Schema.kind_of sch (Task_graph.entity_of g nid) = Schema.Design_data
  in
  let data =
    Task_graph.nodes g
    |> List.filter_map (fun (n : Task_graph.node) ->
           if is_data n.nid then Some (n.nid, n.entity) else None)
  in
  let derived_tools = ref [] in
  let activity (inv : Task_graph.invocation) =
    let act_tool =
      match inv.tool with
      | None -> None
      | Some tnid ->
        let tool_entity = Task_graph.entity_of g tnid in
        if Task_graph.out_edges g tnid <> [] then
          derived_tools := tool_entity :: !derived_tools;
        Some tool_entity
    in
    let act_inputs =
      List.filter (fun (_, nid) -> is_data nid) inv.inputs
    in
    let act_outputs =
      List.map (fun nid -> (Task_graph.entity_of g nid, nid)) inv.outputs
    in
    { act_tool; act_inputs; act_outputs }
  in
  let activities =
    Task_graph.invocations g
    (* A tool node's own construction (e.g. compiling a simulator) is
       an activity only when its output is data; building a tool is the
       part a flowmap drops. *)
    |> List.filter (fun (inv : Task_graph.invocation) ->
           List.exists is_data inv.outputs)
    |> List.map activity
  in
  { data; activities; derived_tools = List.rev !derived_tools }

let lossless b = b.derived_tools = []

(* ------------------------------------------------------------------ *)
(* Flowmap -> task graph                                               *)
(* ------------------------------------------------------------------ *)

(* Reconstruction instantiates a fresh tool node per activity: exactly
   the hardwiring the paper criticises.  Only flowmaps whose activities
   all name plain tools round-trip (see {!lossless}). *)
let to_graph schema b =
  let g = ref (Task_graph.empty schema) in
  let node_of = Hashtbl.create 16 in
  List.iter
    (fun (did, entity) ->
      let g', nid = Task_graph.add_node !g entity in
      g := g';
      Hashtbl.add node_of did nid)
    b.data;
  let resolve did =
    match Hashtbl.find_opt node_of did with
    | Some nid -> nid
    | None -> raise (Bipartite_error (Printf.sprintf "unknown datum %d" did))
  in
  let build_activity act =
    let tool_nid =
      match act.act_tool with
      | None -> None
      | Some tool ->
        let g', nid = Task_graph.add_node !g tool in
        g := g';
        Some nid
    in
    List.iter
      (fun (_, out_did) ->
        let out_nid = resolve out_did in
        (match tool_nid with
        | None -> ()
        | Some tnid ->
          let entity = Task_graph.entity_of !g out_nid in
          let role =
            match Schema.functional_dep schema entity with
            | Some d -> d.role
            | None ->
              raise
                (Bipartite_error
                   (Printf.sprintf "%s takes no tool, activity names one" entity))
          in
          g := Task_graph.connect !g ~user:out_nid ~role ~dep:tnid);
        List.iter
          (fun (role, in_did) ->
            g := Task_graph.connect !g ~user:out_nid ~role ~dep:(resolve in_did))
          act.act_inputs)
      act.act_outputs
  in
  List.iter build_activity b.activities;
  !g

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let to_ascii b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "flowmap:\n";
  List.iter
    (fun act ->
      let names l = String.concat ", " (List.map fst l) in
      Buffer.add_string buf
        (Printf.sprintf "  [%s] : (%s) -> (%s)\n"
           (match act.act_tool with Some t -> t | None -> "compose")
           (names act.act_inputs)
           (names act.act_outputs)))
    b.activities;
  if b.derived_tools <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  ! lost: tools built by the flow itself: %s\n"
         (String.concat ", " b.derived_tools));
  Buffer.contents buf

let size b = List.length b.data + List.length b.activities
