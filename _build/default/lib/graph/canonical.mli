(** Canonical forms for task graphs: comparison up to node renumbering.

    Used by the round-trip properties over the Fig. 3 representations
    and to check that all four design approaches reach the same flow.
    Sharing is captured (a node reused twice differs from two copies);
    the one undecidable-by-key pattern is symmetric sharing between
    structurally identical siblings, which no schema-driven flow here
    exhibits. *)

val structural_keys : Task_graph.t -> (int, string) Hashtbl.t
(** A structural key per node: its entity plus its dependencies' keys
    in role order (tree expansion, memoized). *)

val canonical : Task_graph.t -> string
(** Deterministic serialization with canonical ids and explicit
    sharing; equal strings iff isomorphic graphs. *)

val equal : Task_graph.t -> Task_graph.t -> bool
