(* The design-data universe: every payload a design object can hold.

   Tools and data are treated uniformly (the paper's central move), so
   tool instances are payloads too: a built-in behaviour key, a
   scripted editor session, or a simulator compiled during the design
   itself (Fig. 2). *)

open Ddf_eda

type sim_options = {
  settle_ps : int;
  plot_width : int;
}

let default_sim_options = { settle_ps = 2000; plot_width = 64 }

type placement_options = {
  layout_suffix : string;
}

let default_placement_options = { layout_suffix = "_layout" }

type optimizer_options = {
  budget : int;
  objective : Optimize.objective;
}

let default_optimizer_options =
  { budget = 200; objective = Optimize.default_objective }

(* The composite circuit entity of Fig. 1: device models + netlist. *)
type circuit = {
  c_models : Device_model.t;
  c_netlist : Netlist.t;
}

(* Tool instances are design data. *)
type tool_value =
  | Builtin of string
    (* behaviour key plus optional variant arguments, e.g.
       "optimizer:annealing": the multiple-encapsulation trick of
       section 3.3 *)
  | Scripted_netlist_editor of Edit_script.t
  | Scripted_layout_editor of Layout.edit list
  | Scripted_model_editor of Device_model.edit list
  | Compiled_simulator of Sim_compiled.t

type value =
  | Blob of { blob_kind : string; text : string }
      (* schema-extensible payload: custom (non-EDA) methodologies
         carry their data as tagged text *)
  | Netlist of Netlist.t
  | Layout of Layout.t
  | Device_models of Device_model.t
  | Stimuli of Stimuli.t
  | Circuit of circuit
  | Performance of Performance.t
  | Verification of Lvs.t
  | Plot of Plot.t
  | Extraction_statistics of Extract.statistics
  | Transistor_view of Transistor.t
  | Sim_options of sim_options
  | Placement_options of placement_options
  | Optimizer_options of optimizer_options
  | Tool of tool_value

exception Type_error of string

let type_errorf fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let kind_name = function
  | Blob { blob_kind; _ } -> "blob:" ^ blob_kind
  | Netlist _ -> "netlist"
  | Layout _ -> "layout"
  | Device_models _ -> "device_models"
  | Stimuli _ -> "stimuli"
  | Circuit _ -> "circuit"
  | Performance _ -> "performance"
  | Verification _ -> "verification"
  | Plot _ -> "plot"
  | Extraction_statistics _ -> "extraction_statistics"
  | Transistor_view _ -> "transistor_view"
  | Sim_options _ -> "sim_options"
  | Placement_options _ -> "placement_options"
  | Optimizer_options _ -> "optimizer_options"
  | Tool (Builtin k) -> "tool:" ^ k
  | Tool (Scripted_netlist_editor _) -> "tool:netlist_editor"
  | Tool (Scripted_layout_editor _) -> "tool:layout_editor"
  | Tool (Scripted_model_editor _) -> "tool:model_editor"
  | Tool (Compiled_simulator _) -> "tool:compiled_simulator"

(* Content hash for the store's physical-data sharing. *)
let hash = function
  | Blob { blob_kind; text } ->
    "bl:" ^ Digest.to_hex (Digest.string (blob_kind ^ "|" ^ text))
  | Netlist nl -> "nl:" ^ Netlist.hash nl
  | Layout l -> "la:" ^ Layout.hash l
  | Device_models m -> "dm:" ^ Device_model.hash m
  | Stimuli s -> "st:" ^ Stimuli.hash s
  | Circuit c -> "ci:" ^ Device_model.hash c.c_models ^ Netlist.hash c.c_netlist
  | Performance p -> "pf:" ^ Performance.hash p
  | Verification v -> "vf:" ^ Lvs.hash v
  | Plot p -> "pl:" ^ Plot.hash p
  | Extraction_statistics s -> "ex:" ^ Extract.statistics_hash s
  | Transistor_view t -> "tr:" ^ Transistor.hash t
  | Sim_options o -> Printf.sprintf "so:%d:%d" o.settle_ps o.plot_width
  | Placement_options o -> "po:" ^ o.layout_suffix
  | Optimizer_options o ->
    Printf.sprintf "oo:%d:%f:%f" o.budget o.objective.Optimize.delay_weight
      o.objective.Optimize.power_weight
  | Tool (Builtin k) -> "tb:" ^ k
  | Tool (Scripted_netlist_editor s) -> "tn:" ^ Edit_script.hash s
  | Tool (Scripted_layout_editor edits) ->
    "tl:"
    ^ Digest.to_hex
        (Digest.string (Marshal.to_string edits [ Marshal.No_sharing ]))
  | Tool (Scripted_model_editor edits) ->
    "tm:"
    ^ Digest.to_hex
        (Digest.string (Marshal.to_string edits [ Marshal.No_sharing ]))
  | Tool (Compiled_simulator c) -> "tc:" ^ Sim_compiled.hash c

(* Typed projections used by the encapsulations. *)
let as_blob = function
  | Blob { blob_kind; text } -> (blob_kind, text)
  | v -> type_errorf "expected a blob, got %s" (kind_name v)

let as_netlist = function
  | Netlist nl -> nl
  | v -> type_errorf "expected a netlist, got %s" (kind_name v)

let as_layout = function
  | Layout l -> l
  | v -> type_errorf "expected a layout, got %s" (kind_name v)

let as_device_models = function
  | Device_models m -> m
  | v -> type_errorf "expected device models, got %s" (kind_name v)

let as_stimuli = function
  | Stimuli s -> s
  | v -> type_errorf "expected stimuli, got %s" (kind_name v)

let as_circuit = function
  | Circuit c -> c
  | v -> type_errorf "expected a circuit, got %s" (kind_name v)

let as_performance = function
  | Performance p -> p
  | v -> type_errorf "expected a performance, got %s" (kind_name v)

let as_verification = function
  | Verification x -> x
  | v -> type_errorf "expected a verification, got %s" (kind_name v)

let as_sim_options = function
  | Sim_options o -> o
  | v -> type_errorf "expected sim options, got %s" (kind_name v)

let as_placement_options = function
  | Placement_options o -> o
  | v -> type_errorf "expected placement options, got %s" (kind_name v)

let as_optimizer_options = function
  | Optimizer_options o -> o
  | v -> type_errorf "expected optimizer options, got %s" (kind_name v)

let as_tool = function
  | Tool t -> t
  | v -> type_errorf "expected a tool, got %s" (kind_name v)

(* A short human-readable summary, used by browsers and the CLI. *)
let summary = function
  | Blob { blob_kind; text } ->
    Printf.sprintf "%s (%d bytes)" blob_kind (String.length text)
  | Netlist nl ->
    Printf.sprintf "netlist %s (%d gates)" nl.Netlist.name
      (Netlist.gate_count nl)
  | Layout l ->
    Printf.sprintf "layout %s (%d cells, area %d)" l.Layout.layout_name
      (Layout.cell_count l) (Layout.area l)
  | Device_models m -> Fmt.str "%a" Device_model.pp m
  | Stimuli s -> Fmt.str "%a" Stimuli.pp s
  | Circuit c ->
    Printf.sprintf "circuit %s under %s" c.c_netlist.Netlist.name
      c.c_models.Device_model.model_name
  | Performance p -> Fmt.str "%a" Performance.pp p
  | Verification v ->
    Printf.sprintf "verification %s vs %s: %s" v.Lvs.reference_name
      v.Lvs.candidate_name
      (if v.Lvs.equivalent then "equivalent" else "MISMATCH")
  | Plot p -> "plot " ^ p.Plot.title
  | Extraction_statistics s -> Fmt.str "%a" Extract.pp_statistics s
  | Transistor_view t -> Fmt.str "%a" Transistor.pp t
  | Sim_options o -> Printf.sprintf "sim options (settle %d ps)" o.settle_ps
  | Placement_options o -> "placement options " ^ o.layout_suffix
  | Optimizer_options o -> Printf.sprintf "optimizer options (budget %d)" o.budget
  | Tool (Builtin k) -> "tool " ^ k
  | Tool (Scripted_netlist_editor s) ->
    Printf.sprintf "netlist editor session %s (%d edits)" s.Edit_script.script_name
      (List.length s.Edit_script.edits)
  | Tool (Scripted_layout_editor edits) ->
    Printf.sprintf "layout editor session (%d edits)" (List.length edits)
  | Tool (Scripted_model_editor edits) ->
    Printf.sprintf "model editor session (%d edits)" (List.length edits)
  | Tool (Compiled_simulator c) ->
    Printf.sprintf "compiled simulator of %s (%d instructions)"
      c.Sim_compiled.source_name
      (Sim_compiled.instruction_count c)

let pp ppf v = Fmt.string ppf (summary v)
