(** The design-data universe: every payload a design object can hold.

    Tools and data are treated uniformly (the paper's central move), so
    tool instances are payloads too: a built-in behaviour key, a
    scripted editor session, or a simulator compiled during the design
    itself (Fig. 2). *)

open Ddf_eda

type sim_options = {
  settle_ps : int;
  plot_width : int;
}

val default_sim_options : sim_options

type placement_options = {
  layout_suffix : string;
}

val default_placement_options : placement_options

type optimizer_options = {
  budget : int;
  objective : Optimize.objective;
}

val default_optimizer_options : optimizer_options

(** The composite circuit entity of Fig. 1: device models + netlist. *)
type circuit = {
  c_models : Device_model.t;
  c_netlist : Netlist.t;
}

(** Tool instances are design data. *)
type tool_value =
  | Builtin of string
      (** behaviour key, possibly with variant arguments
          ("optimizer:annealing"): the multiple-encapsulation trick of
          section 3.3 *)
  | Scripted_netlist_editor of Edit_script.t
  | Scripted_layout_editor of Layout.edit list
  | Scripted_model_editor of Device_model.edit list
  | Compiled_simulator of Sim_compiled.t
      (** a tool created during the design (Fig. 2) *)

type value =
  | Blob of { blob_kind : string; text : string }
      (** schema-extensible payload: custom (non-EDA) methodologies
          carry their data as tagged text *)
  | Netlist of Netlist.t
  | Layout of Layout.t
  | Device_models of Device_model.t
  | Stimuli of Stimuli.t
  | Circuit of circuit
  | Performance of Performance.t
  | Verification of Lvs.t
  | Plot of Plot.t
  | Extraction_statistics of Extract.statistics
  | Transistor_view of Transistor.t
  | Sim_options of sim_options
  | Placement_options of placement_options
  | Optimizer_options of optimizer_options
  | Tool of tool_value

exception Type_error of string

val kind_name : value -> string

val hash : value -> string
(** Content hash, driving the store's physical-data sharing. *)

(** {1 Typed projections (used by encapsulations)}

    Each raises {!Type_error} on a payload of the wrong kind. *)

val as_blob : value -> string * string
(** [(kind, text)] of a {!Blob}. *)

val as_netlist : value -> Netlist.t
val as_layout : value -> Layout.t
val as_device_models : value -> Device_model.t
val as_stimuli : value -> Stimuli.t
val as_circuit : value -> circuit
val as_performance : value -> Performance.t
val as_verification : value -> Lvs.t
val as_sim_options : value -> sim_options
val as_placement_options : value -> placement_options
val as_optimizer_options : value -> optimizer_options
val as_tool : value -> tool_value

val summary : value -> string
(** A short human-readable line, used by browsers and the CLI. *)

val pp : Format.formatter -> value -> unit
