lib/views/views.mli: Ddf_eda Ddf_exec Ddf_schema Ddf_store Format Store
