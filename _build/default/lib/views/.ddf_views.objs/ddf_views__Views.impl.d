lib/views/views.ml: Ddf_data Ddf_eda Ddf_exec Ddf_graph Ddf_schema Ddf_store Fmt List Schema Standard_flows Standard_schemas Store Task_graph
