(** View management through flows (section 3.3, Figs. 7-8).

    Designers see a cell as a logic view, a transistor-level view and a
    physical view.  Associating views with schema entities lets flows
    express the transformations between views: synthesis derives the
    physical view (Fig. 8a), verification checks correspondence by
    extraction and comparison (Fig. 8b).  View management needs no
    machinery beyond dynamically defined flows; this module names the
    conventions. *)

open Ddf_store

type view =
  | Logic_view
  | Transistor_level_view
  | Physical_view

val view_name : view -> string

val view_of_entity : Ddf_schema.Schema.t -> string -> view option
(** The view an entity belongs to, by its root type. *)

type cell_views = {
  cv_logic : Store.iid;
  cv_transistor : Store.iid;
  cv_physical : Store.iid;
}

val derive_views :
  Ddf_exec.Engine.context -> logic:Store.iid -> placer_tool:Store.iid ->
  expander_tool:Store.iid -> cell_views
(** Derive the transistor and physical views of a logic view through
    two flows, recorded in the history (Fig. 7). *)

val verify_physical :
  Ddf_exec.Engine.context -> logic:Store.iid -> physical:Store.iid ->
  extractor_tool:Store.iid -> verifier_tool:Store.iid ->
  Store.iid * Ddf_eda.Lvs.t
(** The Fig. 8(b) flow: extract the physical view and compare against
    the logic view; returns the verification instance and its verdict. *)

val transistor_corresponds :
  Ddf_exec.Engine.context -> logic:Store.iid -> transistor:Store.iid ->
  Ddf_eda.Rng.t -> bool
(** Switch-level vs. gate-level functional agreement. *)

val pp_view : Format.formatter -> view -> unit
