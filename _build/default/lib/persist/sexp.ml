(* A minimal s-expression reader/printer: the workspace's on-disk
   syntax.  Atoms are bare words or double-quoted strings with the
   usual escapes; lists are parenthesized. *)

type t =
  | Atom of string
  | List of t list

exception Sexp_error of string

let sexp_errorf fmt = Format.kasprintf (fun s -> raise (Sexp_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let must_quote s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_buffer buf indent = function
  | Atom s -> Buffer.add_string buf (if must_quote s then escape s else s)
  | List items ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i item ->
        if i > 0 then begin
          (* long lists break across lines for readable diffs *)
          match item with
          | List _ when indent >= 0 ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (indent + 1) ' ')
          | List _ | Atom _ -> Buffer.add_char buf ' '
        end;
        to_buffer buf (if indent >= 0 then indent + 1 else indent) item)
      items;
    Buffer.add_char buf ')'

let to_string ?(pretty = true) sexp =
  let buf = Buffer.create 1024 in
  to_buffer buf (if pretty then 0 else -1) sexp;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while !pos < n && text.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | Some _ | None -> ()
  in
  let quoted_atom () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> sexp_errorf "unterminated string at %d" !pos
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some c -> sexp_errorf "bad escape \\%c" c
        | None -> sexp_errorf "dangling escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None ->
        stop := true
      | Some _ -> advance ()
    done;
    Atom (String.sub text start (!pos - start))
  in
  let rec expr () =
    skip_ws ();
    match peek () with
    | None -> sexp_errorf "unexpected end of input"
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec items_loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> sexp_errorf "unterminated list"
        | Some _ ->
          items := expr () :: !items;
          items_loop ()
      in
      items_loop ();
      List (List.rev !items)
    | Some '"' -> quoted_atom ()
    | Some ')' -> sexp_errorf "unexpected ')' at %d" !pos
    | Some _ -> bare_atom ()
  in
  let result = expr () in
  skip_ws ();
  if !pos <> n then sexp_errorf "trailing input at %d" !pos;
  result

(* ------------------------------------------------------------------ *)
(* Construction / destructuring helpers                                *)
(* ------------------------------------------------------------------ *)

let atom s = Atom s
let int i = Atom (string_of_int i)
let float f = Atom (Printf.sprintf "%h" f)
let bool b = Atom (string_of_bool b)
let list l = List l
let field name items = List (Atom name :: items)

let as_atom = function
  | Atom s -> s
  | List _ -> sexp_errorf "expected an atom"

let as_int sexp =
  match int_of_string_opt (as_atom sexp) with
  | Some i -> i
  | None -> sexp_errorf "expected an integer, got %S" (as_atom sexp)

let as_float sexp =
  match float_of_string_opt (as_atom sexp) with
  | Some f -> f
  | None -> sexp_errorf "expected a float, got %S" (as_atom sexp)

let as_bool sexp =
  match bool_of_string_opt (as_atom sexp) with
  | Some b -> b
  | None -> sexp_errorf "expected a bool, got %S" (as_atom sexp)

let as_list = function
  | List l -> l
  | Atom a -> sexp_errorf "expected a list, got atom %S" a

(* Access the payload of a [(name item...)] field inside a record. *)
let find_field fields name =
  let matches = function
    | List (Atom n :: rest) when n = name -> Some rest
    | List _ | Atom _ -> None
  in
  match List.find_map matches fields with
  | Some rest -> rest
  | None -> sexp_errorf "missing field %S" name

let find_field_opt fields name =
  let matches = function
    | List (Atom n :: rest) when n = name -> Some rest
    | List _ | Atom _ -> None
  in
  List.find_map matches fields

let one name = function
  | [ x ] -> x
  | _ -> sexp_errorf "field %S expects one item" name
