(** S-expression codecs for every design-data payload.

    Round-trip fidelity matters: gate and cell names survive (edit
    scripts reference them), floats are written exactly, and compiled
    simulators serialize by source hash and are recompiled on load. *)

exception Codec_error of string

val value_to_sexp : Ddf_data.value -> Sexp.t

val value_of_sexp : Sexp.t -> Ddf_data.value
(** @raise Codec_error on malformed payloads. *)

(** {1 Individual codecs (exposed for tests and external tooling)} *)

val netlist_to_sexp : Ddf_eda.Netlist.t -> Sexp.t
val layout_to_sexp : Ddf_eda.Layout.t -> Sexp.t
val edit_to_sexp : Ddf_eda.Edit_script.edit -> Sexp.t
val edit_of_sexp : Sexp.t -> Ddf_eda.Edit_script.edit
val layout_edit_to_sexp : Ddf_eda.Layout.edit -> Sexp.t
val layout_edit_of_sexp : Sexp.t -> Ddf_eda.Layout.edit
