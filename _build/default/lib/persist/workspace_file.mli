(** Workspace persistence.

    The paper's framework is a persistent database: a session — store
    instances with their meta-data, history records, the flow catalog,
    the logical clock — saves to one s-expression file and loads back
    exactly (asserted by dense-id checks and recomputed content hashes;
    the save of a reloaded session is byte-identical, a tested
    fixpoint).  Compiled simulators persist their full
    instruction program. *)

exception Persist_error of string

val format_version : int

val save : Ddf_session.Session.t -> string
val save_file : Ddf_session.Session.t -> string -> unit

val load :
  ?registry:Ddf_tools.Encapsulation.registry -> Ddf_schema.Schema.t ->
  string -> Ddf_session.Session.t
(** @raise Persist_error on syntax errors, version mismatch, non-dense
    ids or content-hash mismatches (tampering/corruption). *)

val load_file :
  ?registry:Ddf_tools.Encapsulation.registry -> Ddf_schema.Schema.t ->
  string -> Ddf_session.Session.t
