(** A minimal s-expression reader/printer: the workspace's on-disk
    syntax.  Atoms are bare words or double-quoted strings with the
    usual escapes; lists are parenthesized; [;] comments run to end of
    line. *)

type t =
  | Atom of string
  | List of t list

exception Sexp_error of string

val to_string : ?pretty:bool -> t -> string
val of_string : string -> t
(** @raise Sexp_error on malformed input or trailing text. *)

(** {1 Construction helpers} *)

val atom : string -> t
val int : int -> t
val float : float -> t
(** Hexadecimal float notation, so round trips are exact. *)

val bool : bool -> t
val list : t list -> t
val field : string -> t list -> t
(** [(name item ...)]. *)

(** {1 Destructuring helpers}

    Each raises {!Sexp_error} on shape mismatch. *)

val as_atom : t -> string
val as_int : t -> int
val as_float : t -> float
val as_bool : t -> bool
val as_list : t -> t list
val find_field : t list -> string -> t list
val find_field_opt : t list -> string -> t list option
val one : string -> t list -> t
