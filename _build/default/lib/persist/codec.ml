(* S-expression codecs for every design-data payload and for the
   framework state (store instances, history records).

   Round-trip fidelity matters: gate and cell names survive (edit
   scripts reference them), content hashes are recomputed on load and
   must agree, and history record ids are preserved so traces keep
   their meaning. *)

open Ddf_eda
module S = Sexp

exception Codec_error of string

let codec_errorf fmt = Format.kasprintf (fun s -> raise (Codec_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Substrate types                                                     *)
(* ------------------------------------------------------------------ *)

let gate_to_sexp (g : Netlist.gate) =
  S.list
    [ S.atom g.Netlist.gname; S.atom (Logic.op_name g.Netlist.op);
      S.list (List.map S.atom g.Netlist.inputs); S.atom g.Netlist.output;
      S.int g.Netlist.drive ]

let gate_of_sexp sexp =
  match S.as_list sexp with
  | [ gname; op; inputs; output; drive ] ->
    let op_name = S.as_atom op in
    let op =
      match Logic.op_of_name op_name with
      | Some op -> op
      | None -> codec_errorf "unknown operator %S" op_name
    in
    Netlist.gate ~drive:(S.as_int drive) (S.as_atom gname) op
      (List.map S.as_atom (S.as_list inputs))
      (S.as_atom output)
  | _ -> codec_errorf "malformed gate"

let flop_to_sexp (f : Netlist.flop) =
  S.list
    [ S.atom f.Netlist.fname; S.atom f.Netlist.d; S.atom f.Netlist.q;
      S.atom (Logic.value_name f.Netlist.init) ]

let flop_of_sexp sexp =
  match S.as_list sexp with
  | [ fname; d; q; init ] ->
    let init =
      match S.as_atom init with
      | "0" -> Logic.V0
      | "1" -> Logic.V1
      | "x" -> Logic.VX
      | s -> codec_errorf "bad flop init %S" s
    in
    Netlist.flop ~init (S.as_atom fname) ~d:(S.as_atom d) ~q:(S.as_atom q)
  | _ -> codec_errorf "malformed flop"

let netlist_to_sexp (nl : Netlist.t) =
  S.list
    ([ S.atom "netlist";
       S.field "name" [ S.atom nl.Netlist.name ];
       S.field "inputs" (List.map S.atom nl.Netlist.primary_inputs);
       S.field "outputs" (List.map S.atom nl.Netlist.primary_outputs);
       S.field "gates" (List.map gate_to_sexp nl.Netlist.gates) ]
    @
    if nl.Netlist.flops = [] then []
    else [ S.field "flops" (List.map flop_to_sexp nl.Netlist.flops) ])

let netlist_of_fields fields =
  let flops =
    match S.find_field_opt fields "flops" with
    | Some items -> List.map flop_of_sexp items
    | None -> []
  in
  Netlist.create ~flops
    ~name:(S.as_atom (S.one "name" (S.find_field fields "name")))
    ~primary_inputs:(List.map S.as_atom (S.find_field fields "inputs"))
    ~primary_outputs:(List.map S.as_atom (S.find_field fields "outputs"))
    (List.map gate_of_sexp (S.find_field fields "gates"))

let pin_to_sexp (p : Layout.pin) =
  S.list [ S.atom p.Layout.pname; S.int p.Layout.px; S.int p.Layout.py ]

let pin_of_sexp sexp =
  match S.as_list sexp with
  | [ pname; px; py ] ->
    { Layout.pname = S.as_atom pname; px = S.as_int px; py = S.as_int py }
  | _ -> codec_errorf "malformed pin"

let cell_kind_to_sexp = function
  | Layout.Gate_cell (op, drive) ->
    S.list [ S.atom "gate"; S.atom (Logic.op_name op); S.int drive ]
  | Layout.Input_pad port -> S.list [ S.atom "in"; S.atom port ]
  | Layout.Output_pad port -> S.list [ S.atom "out"; S.atom port ]

let cell_kind_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "gate"; op; drive ] -> (
    match Logic.op_of_name (S.as_atom op) with
    | Some op -> Layout.Gate_cell (op, S.as_int drive)
    | None -> codec_errorf "unknown cell operator")
  | [ S.Atom "in"; port ] -> Layout.Input_pad (S.as_atom port)
  | [ S.Atom "out"; port ] -> Layout.Output_pad (S.as_atom port)
  | _ -> codec_errorf "malformed cell kind"

let cell_to_sexp (c : Layout.cell) =
  S.list
    [ S.atom c.Layout.cname; cell_kind_to_sexp c.Layout.kind;
      S.int c.Layout.x; S.int c.Layout.y; S.int c.Layout.width;
      S.int c.Layout.height; S.list (List.map pin_to_sexp c.Layout.pins) ]

let cell_of_sexp sexp =
  match S.as_list sexp with
  | [ cname; kind; x; y; width; height; pins ] ->
    {
      Layout.cname = S.as_atom cname;
      kind = cell_kind_of_sexp kind;
      x = S.as_int x;
      y = S.as_int y;
      width = S.as_int width;
      height = S.as_int height;
      pins = List.map pin_of_sexp (S.as_list pins);
    }
  | _ -> codec_errorf "malformed cell"

let segment_to_sexp (s : Layout.segment) =
  S.list [ S.int s.Layout.x1; S.int s.Layout.y1; S.int s.Layout.x2; S.int s.Layout.y2 ]

let segment_of_sexp sexp =
  match S.as_list sexp with
  | [ x1; y1; x2; y2 ] ->
    Layout.segment (S.as_int x1) (S.as_int y1) (S.as_int x2) (S.as_int y2)
  | _ -> codec_errorf "malformed segment"

let layout_to_sexp (l : Layout.t) =
  S.list
    [ S.atom "layout";
      S.field "name" [ S.atom l.Layout.layout_name ];
      S.field "die" [ S.int l.Layout.die_width; S.int l.Layout.die_height ];
      S.field "cells" (List.map cell_to_sexp l.Layout.cells);
      S.field "wires" (List.map segment_to_sexp l.Layout.wires) ]

let layout_of_fields fields =
  let die = S.find_field fields "die" in
  let die_width, die_height =
    match die with
    | [ w; h ] -> (S.as_int w, S.as_int h)
    | _ -> codec_errorf "malformed die"
  in
  {
    Layout.layout_name = S.as_atom (S.one "name" (S.find_field fields "name"));
    cells = List.map cell_of_sexp (S.find_field fields "cells");
    wires = List.map segment_of_sexp (S.find_field fields "wires");
    die_width;
    die_height;
  }

let model_to_sexp (m : Device_model.t) =
  S.list
    [ S.atom "device_models"; S.atom m.Device_model.model_name;
      S.int m.Device_model.process_nm; S.int m.Device_model.vdd_mv;
      S.int m.Device_model.vth_mv; S.float m.Device_model.delay_scale;
      S.float m.Device_model.power_scale ]

let model_of_parts = function
  | [ name; process; vdd; vth; dscale; pscale ] ->
    Device_model.create ~model_name:(S.as_atom name)
      ~process_nm:(S.as_int process) ~vdd_mv:(S.as_int vdd)
      ~vth_mv:(S.as_int vth) ~delay_scale:(S.as_float dscale)
      ~power_scale:(S.as_float pscale)
  | _ -> codec_errorf "malformed device model"

let value_name = function
  | Logic.V0 -> "0"
  | Logic.V1 -> "1"
  | Logic.VX -> "x"

let value_of_name = function
  | "0" -> Logic.V0
  | "1" -> Logic.V1
  | "x" -> Logic.VX
  | s -> codec_errorf "bad logic value %S" s

let stimuli_to_sexp stim =
  S.list
    [ S.atom "stimuli";
      S.field "interval" [ S.int (Stimuli.interval_ps stim) ];
      S.field "vectors"
        (List.map
           (fun vec ->
             S.list
               (List.map
                  (fun (net, v) -> S.list [ S.atom net; S.atom (value_name v) ])
                  vec))
           (Stimuli.vectors stim)) ]

let stimuli_of_fields fields =
  let vector sexp =
    List.map
      (fun pair ->
        match S.as_list pair with
        | [ net; v ] -> (S.as_atom net, value_of_name (S.as_atom v))
        | _ -> codec_errorf "malformed stimulus pair")
      (S.as_list sexp)
  in
  Stimuli.create
    ~interval_ps:(S.as_int (S.one "interval" (S.find_field fields "interval")))
    (List.map vector (S.find_field fields "vectors"))

let performance_to_sexp (p : Performance.t) =
  S.list
    [ S.atom "performance"; S.atom p.Performance.circuit_name;
      S.atom p.Performance.model_name; S.int p.Performance.critical_path_ps;
      S.int p.Performance.total_switching; S.float p.Performance.dynamic_power;
      S.int p.Performance.vectors_simulated; S.int p.Performance.gate_count;
      S.atom p.Performance.output_signature ]

let performance_of_parts = function
  | [ circuit; model; cp; sw; power; vectors; gates; signature ] ->
    {
      Performance.circuit_name = S.as_atom circuit;
      model_name = S.as_atom model;
      critical_path_ps = S.as_int cp;
      total_switching = S.as_int sw;
      dynamic_power = S.as_float power;
      vectors_simulated = S.as_int vectors;
      gate_count = S.as_int gates;
      output_signature = S.as_atom signature;
    }
  | _ -> codec_errorf "malformed performance"

let mismatch_to_sexp = function
  | Lvs.Port_sets_differ s -> S.list [ S.atom "ports"; S.atom s ]
  | Lvs.Gate_count (a, b) -> S.list [ S.atom "count"; S.int a; S.int b ]
  | Lvs.Unmatched_gate g -> S.list [ S.atom "unmatched"; S.atom g ]
  | Lvs.Signature_conflict s -> S.list [ S.atom "conflict"; S.atom s ]

let mismatch_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "ports"; s ] -> Lvs.Port_sets_differ (S.as_atom s)
  | [ S.Atom "count"; a; b ] -> Lvs.Gate_count (S.as_int a, S.as_int b)
  | [ S.Atom "unmatched"; g ] -> Lvs.Unmatched_gate (S.as_atom g)
  | [ S.Atom "conflict"; s ] -> Lvs.Signature_conflict (S.as_atom s)
  | _ -> codec_errorf "malformed mismatch"

let verification_to_sexp (v : Lvs.t) =
  S.list
    [ S.atom "verification";
      S.field "reference" [ S.atom v.Lvs.reference_name ];
      S.field "candidate" [ S.atom v.Lvs.candidate_name ];
      S.field "equivalent" [ S.bool v.Lvs.equivalent ];
      S.field "matched" [ S.int v.Lvs.matched_gates ];
      S.field "mismatches" (List.map mismatch_to_sexp v.Lvs.mismatches);
      S.field "gate_map"
        (List.map
           (fun (a, b) -> S.list [ S.atom a; S.atom b ])
           v.Lvs.gate_map) ]

let verification_of_fields fields =
  {
    Lvs.reference_name = S.as_atom (S.one "reference" (S.find_field fields "reference"));
    candidate_name = S.as_atom (S.one "candidate" (S.find_field fields "candidate"));
    equivalent = S.as_bool (S.one "equivalent" (S.find_field fields "equivalent"));
    matched_gates = S.as_int (S.one "matched" (S.find_field fields "matched"));
    mismatches = List.map mismatch_of_sexp (S.find_field fields "mismatches");
    gate_map =
      List.map
        (fun pair ->
          match S.as_list pair with
          | [ a; b ] -> (S.as_atom a, S.as_atom b)
          | _ -> codec_errorf "malformed gate map entry")
        (S.find_field fields "gate_map");
  }

let plot_to_sexp (p : Plot.t) =
  S.list
    [ S.atom "plot";
      S.field "title" [ S.atom p.Plot.title ];
      S.field "rendering" [ S.atom p.Plot.rendering ];
      S.field "nets" (List.map S.atom p.Plot.nets_plotted) ]

let plot_of_fields fields =
  {
    Plot.title = S.as_atom (S.one "title" (S.find_field fields "title"));
    rendering = S.as_atom (S.one "rendering" (S.find_field fields "rendering"));
    nets_plotted = List.map S.as_atom (S.find_field fields "nets");
  }

let statistics_to_sexp (s : Extract.statistics) =
  S.list
    [ S.atom "extraction_statistics"; S.atom s.Extract.source_layout;
      S.int s.Extract.nets_extracted; S.int s.Extract.cells_extracted;
      S.int s.Extract.total_wirelength; S.float s.Extract.estimated_cap_ff;
      S.int s.Extract.vias; S.int s.Extract.die_area; S.int s.Extract.opens ]

let statistics_of_parts = function
  | [ source; nets; cells; wl; cap; vias; area; opens ] ->
    {
      Extract.source_layout = S.as_atom source;
      nets_extracted = S.as_int nets;
      cells_extracted = S.as_int cells;
      total_wirelength = S.as_int wl;
      estimated_cap_ff = S.as_float cap;
      vias = S.as_int vias;
      die_area = S.as_int area;
      opens = S.as_int opens;
    }
  | _ -> codec_errorf "malformed extraction statistics"

let device_to_sexp (d : Transistor.device) =
  S.list
    [ S.atom d.Transistor.dname;
      S.atom (match d.Transistor.dtype with Transistor.Nmos -> "n" | Transistor.Pmos -> "p");
      S.atom d.Transistor.gate_net; S.atom d.Transistor.source;
      S.atom d.Transistor.drain ]

let device_of_sexp sexp =
  match S.as_list sexp with
  | [ dname; dtype; gate_net; source; drain ] ->
    {
      Transistor.dname = S.as_atom dname;
      dtype =
        (match S.as_atom dtype with
        | "n" -> Transistor.Nmos
        | "p" -> Transistor.Pmos
        | s -> codec_errorf "bad device type %S" s);
      gate_net = S.as_atom gate_net;
      source = S.as_atom source;
      drain = S.as_atom drain;
    }
  | _ -> codec_errorf "malformed device"

let transistor_to_sexp (t : Transistor.t) =
  S.list
    [ S.atom "transistor_view";
      S.field "name" [ S.atom t.Transistor.tname ];
      S.field "inputs" (List.map S.atom t.Transistor.inputs);
      S.field "outputs" (List.map S.atom t.Transistor.outputs);
      S.field "stages"
        (List.map
           (fun (st : Transistor.stage) ->
             S.list
               [ S.atom st.Transistor.out;
                 S.list (List.map device_to_sexp st.Transistor.devices) ])
           t.Transistor.stages) ]

let transistor_of_fields fields =
  {
    Transistor.tname = S.as_atom (S.one "name" (S.find_field fields "name"));
    inputs = List.map S.as_atom (S.find_field fields "inputs");
    outputs = List.map S.as_atom (S.find_field fields "outputs");
    stages =
      List.map
        (fun sexp ->
          match S.as_list sexp with
          | [ out; devices ] ->
            {
              Transistor.out = S.as_atom out;
              devices = List.map device_of_sexp (S.as_list devices);
            }
          | _ -> codec_errorf "malformed stage")
        (S.find_field fields "stages");
  }

(* ------------------------------------------------------------------ *)
(* Edit scripts and tool payloads                                      *)
(* ------------------------------------------------------------------ *)

let edit_to_sexp = function
  | Edit_script.Rename n -> S.list [ S.atom "rename"; S.atom n ]
  | Edit_script.Add_gate { gname; op; inputs; output; drive } ->
    S.list
      [ S.atom "add"; S.atom gname; S.atom (Logic.op_name op);
        S.list (List.map S.atom inputs); S.atom output; S.int drive ]
  | Edit_script.Remove_gate g -> S.list [ S.atom "remove"; S.atom g ]
  | Edit_script.Set_drive (g, d) -> S.list [ S.atom "drive"; S.atom g; S.int d ]
  | Edit_script.Insert_buffer { net; gname } ->
    S.list [ S.atom "buffer"; S.atom net; S.atom gname ]

let edit_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "rename"; n ] -> Edit_script.Rename (S.as_atom n)
  | [ S.Atom "add"; gname; op; inputs; output; drive ] ->
    let op_name = S.as_atom op in
    (match Logic.op_of_name op_name with
    | Some op ->
      Edit_script.Add_gate
        { gname = S.as_atom gname; op;
          inputs = List.map S.as_atom (S.as_list inputs);
          output = S.as_atom output; drive = S.as_int drive }
    | None -> codec_errorf "unknown operator %S" op_name)
  | [ S.Atom "remove"; g ] -> Edit_script.Remove_gate (S.as_atom g)
  | [ S.Atom "drive"; g; d ] -> Edit_script.Set_drive (S.as_atom g, S.as_int d)
  | [ S.Atom "buffer"; net; gname ] ->
    Edit_script.Insert_buffer { net = S.as_atom net; gname = S.as_atom gname }
  | _ -> codec_errorf "malformed netlist edit"

let layout_edit_to_sexp = function
  | Layout.Move_cell (c, dx, dy) ->
    S.list [ S.atom "move"; S.atom c; S.int dx; S.int dy ]
  | Layout.Delete_cell c -> S.list [ S.atom "delete_cell"; S.atom c ]
  | Layout.Rename_layout n -> S.list [ S.atom "rename"; S.atom n ]
  | Layout.Add_segment s -> S.list [ S.atom "add_wire"; segment_to_sexp s ]
  | Layout.Delete_segment s -> S.list [ S.atom "delete_wire"; segment_to_sexp s ]

let layout_edit_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "move"; c; dx; dy ] ->
    Layout.Move_cell (S.as_atom c, S.as_int dx, S.as_int dy)
  | [ S.Atom "delete_cell"; c ] -> Layout.Delete_cell (S.as_atom c)
  | [ S.Atom "rename"; n ] -> Layout.Rename_layout (S.as_atom n)
  | [ S.Atom "add_wire"; s ] -> Layout.Add_segment (segment_of_sexp s)
  | [ S.Atom "delete_wire"; s ] -> Layout.Delete_segment (segment_of_sexp s)
  | _ -> codec_errorf "malformed layout edit"

let model_edit_to_sexp = function
  | Device_model.Rename n -> S.list [ S.atom "rename"; S.atom n ]
  | Device_model.Set_vdd v -> S.list [ S.atom "vdd"; S.int v ]
  | Device_model.Set_vth v -> S.list [ S.atom "vth"; S.int v ]
  | Device_model.Scale_delay f -> S.list [ S.atom "delay"; S.float f ]
  | Device_model.Scale_power f -> S.list [ S.atom "power"; S.float f ]

let model_edit_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "rename"; n ] -> Device_model.Rename (S.as_atom n)
  | [ S.Atom "vdd"; v ] -> Device_model.Set_vdd (S.as_int v)
  | [ S.Atom "vth"; v ] -> Device_model.Set_vth (S.as_int v)
  | [ S.Atom "delay"; f ] -> Device_model.Scale_delay (S.as_float f)
  | [ S.Atom "power"; f ] -> Device_model.Scale_power (S.as_float f)
  | _ -> codec_errorf "malformed model edit"

let tool_to_sexp = function
  | Ddf_data.Builtin key -> S.list [ S.atom "builtin"; S.atom key ]
  | Ddf_data.Scripted_netlist_editor script ->
    S.list
      [ S.atom "netlist_session"; S.atom script.Edit_script.script_name;
        S.list (List.map edit_to_sexp script.Edit_script.edits) ]
  | Ddf_data.Scripted_layout_editor edits ->
    S.list [ S.atom "layout_session"; S.list (List.map layout_edit_to_sexp edits) ]
  | Ddf_data.Scripted_model_editor edits ->
    S.list [ S.atom "model_session"; S.list (List.map model_edit_to_sexp edits) ]
  | Ddf_data.Compiled_simulator compiled ->
    (* persist the full program: the source netlist may not itself be a
       store instance (tools can be installed directly) *)
    let slot_pairs pairs =
      List.map (fun (net, slot) -> S.list [ S.atom net; S.int slot ]) pairs
    in
    S.list
      [ S.atom "compiled_simulator";
        S.field "source_name" [ S.atom compiled.Sim_compiled.source_name ];
        S.field "source_hash" [ S.atom compiled.Sim_compiled.source_hash ];
        S.field "nets" [ S.int compiled.Sim_compiled.n_nets ];
        S.field "flops"
          (List.map
             (fun (d, q, init) ->
               S.list [ S.int d; S.int q; S.atom (Logic.value_name init) ])
             compiled.Sim_compiled.flop_slots);
        S.field "net_index" (slot_pairs compiled.Sim_compiled.net_index);
        S.field "inputs" (slot_pairs compiled.Sim_compiled.input_slots);
        S.field "outputs" (slot_pairs compiled.Sim_compiled.output_slots);
        S.field "program"
          (Array.to_list
             (Array.map
                (fun (i : Sim_compiled.instr) ->
                  S.list
                    [ S.atom (Logic.op_name i.Sim_compiled.op);
                      S.list
                        (Array.to_list
                           (Array.map S.int i.Sim_compiled.args));
                      S.int i.Sim_compiled.dst ])
                compiled.Sim_compiled.program)) ]

let tool_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "builtin"; key ] -> Ddf_data.Builtin (S.as_atom key)
  | [ S.Atom "netlist_session"; name; edits ] ->
    Ddf_data.Scripted_netlist_editor
      (Edit_script.create ~name:(S.as_atom name)
         (List.map edit_of_sexp (S.as_list edits)))
  | [ S.Atom "layout_session"; edits ] ->
    Ddf_data.Scripted_layout_editor
      (List.map layout_edit_of_sexp (S.as_list edits))
  | [ S.Atom "model_session"; edits ] ->
    Ddf_data.Scripted_model_editor
      (List.map model_edit_of_sexp (S.as_list edits))
  | S.Atom "compiled_simulator" :: fields ->
    let slot_pairs items =
      List.map
        (fun sexp ->
          match S.as_list sexp with
          | [ net; slot ] -> (S.as_atom net, S.as_int slot)
          | _ -> codec_errorf "malformed slot pair")
        items
    in
    let program =
      List.map
        (fun sexp ->
          match S.as_list sexp with
          | [ op; args; dst ] -> (
            match Logic.op_of_name (S.as_atom op) with
            | Some op ->
              ( op,
                Array.of_list (List.map S.as_int (S.as_list args)),
                S.as_int dst )
            | None -> codec_errorf "unknown instruction operator")
          | _ -> codec_errorf "malformed instruction")
        (S.find_field fields "program")
    in
    let flop_slots =
      match S.find_field_opt fields "flops" with
      | None -> []
      | Some items ->
        List.map
          (fun sexp ->
            match S.as_list sexp with
            | [ d; q; init ] ->
              ( S.as_int d, S.as_int q,
                match S.as_atom init with
                | "0" -> Logic.V0
                | "1" -> Logic.V1
                | "x" -> Logic.VX
                | s -> codec_errorf "bad flop init %S" s )
            | _ -> codec_errorf "malformed flop slot")
          items
    in
    Ddf_data.Compiled_simulator
      (Sim_compiled.rebuild ~flop_slots
         ~source_name:
           (S.as_atom (S.one "source_name" (S.find_field fields "source_name")))
         ~source_hash:
           (S.as_atom (S.one "source_hash" (S.find_field fields "source_hash")))
         ~net_index:(slot_pairs (S.find_field fields "net_index"))
         ~n_nets:(S.as_int (S.one "nets" (S.find_field fields "nets")))
         ~program
         ~input_slots:(slot_pairs (S.find_field fields "inputs"))
         ~output_slots:(slot_pairs (S.find_field fields "outputs"))
         ())
  | _ -> codec_errorf "malformed tool payload"

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_to_sexp = function
  | Ddf_data.Blob { blob_kind; text } ->
    S.list [ S.atom "blob"; S.atom blob_kind; S.atom text ]
  | Ddf_data.Netlist nl -> netlist_to_sexp nl
  | Ddf_data.Layout l -> layout_to_sexp l
  | Ddf_data.Device_models m -> model_to_sexp m
  | Ddf_data.Stimuli s -> stimuli_to_sexp s
  | Ddf_data.Circuit c ->
    S.list
      [ S.atom "circuit"; model_to_sexp c.Ddf_data.c_models;
        netlist_to_sexp c.Ddf_data.c_netlist ]
  | Ddf_data.Performance p -> performance_to_sexp p
  | Ddf_data.Verification v -> verification_to_sexp v
  | Ddf_data.Plot p -> plot_to_sexp p
  | Ddf_data.Extraction_statistics s -> statistics_to_sexp s
  | Ddf_data.Transistor_view t -> transistor_to_sexp t
  | Ddf_data.Sim_options o ->
    S.list [ S.atom "sim_options"; S.int o.Ddf_data.settle_ps; S.int o.Ddf_data.plot_width ]
  | Ddf_data.Placement_options o ->
    S.list [ S.atom "placement_options"; S.atom o.Ddf_data.layout_suffix ]
  | Ddf_data.Optimizer_options o ->
    S.list
      [ S.atom "optimizer_options"; S.int o.Ddf_data.budget;
        S.float o.Ddf_data.objective.Optimize.delay_weight;
        S.float o.Ddf_data.objective.Optimize.power_weight ]
  | Ddf_data.Tool t -> S.list [ S.atom "tool"; tool_to_sexp t ]

let value_of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "blob"; kind; text ] ->
    Ddf_data.Blob { blob_kind = S.as_atom kind; text = S.as_atom text }
  | S.Atom "netlist" :: fields -> Ddf_data.Netlist (netlist_of_fields fields)
  | S.Atom "layout" :: fields -> Ddf_data.Layout (layout_of_fields fields)
  | S.Atom "device_models" :: parts -> Ddf_data.Device_models (model_of_parts parts)
  | S.Atom "stimuli" :: fields -> Ddf_data.Stimuli (stimuli_of_fields fields)
  | [ S.Atom "circuit"; models; netlist ] ->
    let c_models =
      match S.as_list models with
      | S.Atom "device_models" :: parts -> model_of_parts parts
      | _ -> codec_errorf "malformed circuit models"
    in
    let c_netlist =
      match S.as_list netlist with
      | S.Atom "netlist" :: fields -> netlist_of_fields fields
      | _ -> codec_errorf "malformed circuit netlist"
    in
    Ddf_data.Circuit { Ddf_data.c_models; c_netlist }
  | S.Atom "performance" :: parts -> Ddf_data.Performance (performance_of_parts parts)
  | S.Atom "verification" :: fields ->
    Ddf_data.Verification (verification_of_fields fields)
  | S.Atom "plot" :: fields -> Ddf_data.Plot (plot_of_fields fields)
  | S.Atom "extraction_statistics" :: parts ->
    Ddf_data.Extraction_statistics (statistics_of_parts parts)
  | S.Atom "transistor_view" :: fields ->
    Ddf_data.Transistor_view (transistor_of_fields fields)
  | [ S.Atom "sim_options"; settle; width ] ->
    Ddf_data.Sim_options
      { Ddf_data.settle_ps = S.as_int settle; plot_width = S.as_int width }
  | [ S.Atom "placement_options"; suffix ] ->
    Ddf_data.Placement_options { Ddf_data.layout_suffix = S.as_atom suffix }
  | [ S.Atom "optimizer_options"; budget; dw; pw ] ->
    Ddf_data.Optimizer_options
      { Ddf_data.budget = S.as_int budget;
        objective =
          { Optimize.delay_weight = S.as_float dw;
            power_weight = S.as_float pw } }
  | [ S.Atom "tool"; t ] -> Ddf_data.Tool (tool_of_sexp t)
  | S.Atom k :: _ -> codec_errorf "unknown payload kind %S" k
  | _ -> codec_errorf "malformed value"
