lib/persist/sexp.ml: Buffer Format List Printf String
