lib/persist/workspace_file.mli: Ddf_schema Ddf_session Ddf_tools
