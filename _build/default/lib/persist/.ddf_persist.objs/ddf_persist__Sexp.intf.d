lib/persist/sexp.mli:
