lib/persist/workspace_file.ml: Codec Ddf_data Ddf_exec Ddf_graph Ddf_history Ddf_session Ddf_store Format History List Option Sexp Store
