lib/persist/codec.mli: Ddf_data Ddf_eda Sexp
