lib/persist/codec.ml: Array Ddf_data Ddf_eda Device_model Edit_script Extract Format Layout List Logic Lvs Netlist Optimize Performance Plot Sexp Sim_compiled Stimuli Transistor
