(* The design-process level, in the spirit of Minerva (Jacome &
   Director, DAC'92), which the paper names as the home of design
   decomposition above the Hercules task level.

   A design process is a hierarchy of cells, each carrying goal
   requirements (which design objects must exist for the cell, e.g. a
   verified layout) and optionally an assigned designer.  Status is
   *derived*, never stored: a requirement is met when the workspace
   history contains an up-to-date instance of the goal entity derived
   from the cell's logic view -- exactly the consistency query of
   section 3.3, lifted to process tracking. *)

open Ddf_store
module E = Ddf_schema.Standard_schemas.E

type requirement = {
  req_goal : string;  (* goal entity that must be derived for the cell *)
}

type cell = {
  cell_name : string;
  requirements : requirement list;
  assigned_to : string option;
  children : cell list;
}

type t = {
  process_name : string;
  root : cell;
}

exception Process_error of string

let process_errorf fmt = Format.kasprintf (fun s -> raise (Process_error s)) fmt

let require goal = { req_goal = goal }

let cell ?(requirements = []) ?assigned_to ?(children = []) cell_name =
  { cell_name; requirements; assigned_to; children }

let rec all_cells c = c :: List.concat_map all_cells c.children

let create ~process_name root =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem seen c.cell_name then
        process_errorf "duplicate cell %S in the process" c.cell_name;
      Hashtbl.add seen c.cell_name ())
    (all_cells root);
  { process_name; root }

let process_name t = t.process_name
let root t = t.root

let find_cell t name =
  match List.find_opt (fun c -> c.cell_name = name) (all_cells t.root) with
  | Some c -> c
  | None -> process_errorf "no cell %S in process %S" name t.process_name

(* ------------------------------------------------------------------ *)
(* Linking cells to the workspace                                      *)
(* ------------------------------------------------------------------ *)

(* A cell's logic view is the newest netlist instance tagged with the
   keyword "cell:<name>" -- the convention the examples and the CLI
   follow when installing cell data. *)
let cell_keyword name = "cell:" ^ name

let logic_view (ctx : Ddf_exec.Engine.context) c =
  let filter =
    { Store.any_filter with
      Store.f_keywords = [ cell_keyword c.cell_name ] }
  in
  Store.browse ctx.Ddf_exec.Engine.store filter
  |> List.filter (fun iid ->
         Ddf_schema.Schema.is_subtype ctx.Ddf_exec.Engine.schema
           ~sub:(Store.entity_of ctx.Ddf_exec.Engine.store iid)
           ~super:E.netlist)
  |> fun l -> List.nth_opt (List.rev l) 0

(* ------------------------------------------------------------------ *)
(* Derived status                                                      *)
(* ------------------------------------------------------------------ *)

type requirement_status =
  | No_logic_view          (* the cell has no design data yet *)
  | Missing                (* nothing derived for this goal yet *)
  | Met of Store.iid       (* an up-to-date goal instance exists *)
  | Stale of Store.iid     (* derived, but its sources have moved on *)

type cell_report = {
  cr_cell : string;
  cr_assigned_to : string option;
  cr_statuses : (requirement * requirement_status) list;
  cr_complete : bool;   (* all requirements Met *)
}

let requirement_status ctx c req =
  match logic_view ctx c with
  | None -> No_logic_view
  | Some logic -> (
    (* consider the whole version family: a goal derived from an older
       version still counts, but shows up stale once the cell moves on *)
    let origin =
      match
        Ddf_history.History.versions ctx.Ddf_exec.Engine.history
          ctx.Ddf_exec.Engine.store ctx.Ddf_exec.Engine.schema logic
      with
      | first :: _ -> first
      | [] -> logic
    in
    match
      Ddf_exec.Consistency.derived_status ctx ~source:origin
        ~goal_entity:req.req_goal
    with
    | Ddf_exec.Consistency.Never_extracted -> Missing
    | Ddf_exec.Consistency.Up_to_date iid -> Met iid
    | Ddf_exec.Consistency.Out_of_date (iid, _) -> Stale iid)

let report_cell ctx c =
  let cr_statuses =
    List.map (fun req -> (req, requirement_status ctx c req)) c.requirements
  in
  {
    cr_cell = c.cell_name;
    cr_assigned_to = c.assigned_to;
    cr_statuses;
    cr_complete =
      c.requirements <> []
      && List.for_all
           (fun (_, s) -> match s with Met _ -> true | _ -> false)
           cr_statuses;
  }

let report ctx t = List.map (report_cell ctx) (all_cells t.root)

let completion ctx t =
  let cells = List.filter (fun c -> c.requirements <> []) (all_cells t.root) in
  if cells = [] then 1.0
  else
    float_of_int
      (List.length (List.filter (fun c -> (report_cell ctx c).cr_complete) cells))
    /. float_of_int (List.length cells)

(* Cells a designer could work on now: assigned to them (or unassigned)
   with at least one unmet requirement and a logic view to start from. *)
let worklist ctx t ~designer =
  List.filter
    (fun c ->
      (match c.assigned_to with None -> true | Some d -> d = designer)
      && c.requirements <> []
      && (not (report_cell ctx c).cr_complete)
      && logic_view ctx c <> None)
    (all_cells t.root)
  |> List.map (fun c -> c.cell_name)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let status_name = function
  | No_logic_view -> "no data"
  | Missing -> "missing"
  | Met _ -> "done"
  | Stale _ -> "STALE"

let pp_report ppf reports =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf r ->
         Fmt.pf ppf "%-16s %-10s %s" r.cr_cell
           (Option.value r.cr_assigned_to ~default:"-")
           (String.concat ", "
              (List.map
                 (fun (req, s) ->
                   Printf.sprintf "%s:%s" req.req_goal (status_name s))
                 r.cr_statuses))))
    reports
