(** A textual form for design-process definitions, so the CLI can track
    a process against a persistent workspace:

    {v
    (process adder4_tapeout
     (cell chip (requires extracted_netlist) (assigned jacome)
      (cell full_adder (requires synthesized_layout) (assigned sutton))
      (cell output_buffer (requires synthesized_layout))))
    v} *)

exception Process_file_error of string

val of_string : string -> Process.t
(** @raise Process_file_error on malformed definitions. *)

val of_file : string -> Process.t
val to_string : Process.t -> string
val to_file : string -> Process.t -> unit
