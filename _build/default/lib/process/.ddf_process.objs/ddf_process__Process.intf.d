lib/process/process.mli: Ddf_exec Ddf_store Format Store
