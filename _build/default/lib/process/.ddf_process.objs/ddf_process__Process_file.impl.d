lib/process/process_file.ml: Ddf_persist Format List Process
