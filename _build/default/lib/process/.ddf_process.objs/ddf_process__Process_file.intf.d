lib/process/process_file.mli: Process
