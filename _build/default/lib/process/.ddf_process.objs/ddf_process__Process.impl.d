lib/process/process.ml: Ddf_exec Ddf_history Ddf_schema Ddf_store Fmt Format Hashtbl List Option Printf Store String
