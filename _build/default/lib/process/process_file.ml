(* A textual form for design-process definitions, so the CLI can track
   a process against a persistent workspace:

     (process adder4_tapeout
      (cell chip (requires extracted_netlist) (assigned jacome)
       (cell full_adder (requires synthesized_layout) (assigned sutton))
       (cell output_buffer (requires synthesized_layout)))) *)

module S = Ddf_persist.Sexp

exception Process_file_error of string

let file_errorf fmt =
  Format.kasprintf (fun s -> raise (Process_file_error s)) fmt

let rec cell_of_sexp sexp =
  match S.as_list sexp with
  | S.Atom "cell" :: S.Atom name :: rest ->
    let requirements = ref [] in
    let assigned = ref None in
    let children = ref [] in
    List.iter
      (fun item ->
        match S.as_list item with
        | [ S.Atom "requires"; goal ] ->
          requirements := Process.require (S.as_atom goal) :: !requirements
        | [ S.Atom "assigned"; who ] -> assigned := Some (S.as_atom who)
        | S.Atom "cell" :: _ -> children := cell_of_sexp item :: !children
        | _ -> file_errorf "unexpected item in cell %S" name)
      rest;
    Process.cell name
      ~requirements:(List.rev !requirements)
      ?assigned_to:!assigned
      ~children:(List.rev !children)
  | _ -> file_errorf "expected (cell <name> ...)"

let of_sexp sexp =
  match S.as_list sexp with
  | [ S.Atom "process"; S.Atom name; root ] ->
    Process.create ~process_name:name (cell_of_sexp root)
  | _ -> file_errorf "expected (process <name> (cell ...))"

let of_string text =
  match S.of_string text with
  | sexp -> of_sexp sexp
  | exception S.Sexp_error m -> file_errorf "syntax: %s" m

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let rec cell_to_sexp (c : Process.cell) =
  S.list
    (S.atom "cell" :: S.atom c.Process.cell_name
    :: (List.map
          (fun (r : Process.requirement) ->
            S.list [ S.atom "requires"; S.atom r.Process.req_goal ])
          c.Process.requirements
       @ (match c.Process.assigned_to with
         | Some who -> [ S.list [ S.atom "assigned"; S.atom who ] ]
         | None -> [])
       @ List.map cell_to_sexp c.Process.children))

let to_sexp t =
  S.list
    [ S.atom "process"; S.atom (Process.process_name t);
      cell_to_sexp (Process.root t) ]

let to_string t = S.to_string (to_sexp t) ^ "\n"

let to_file path t =
  let oc = open_out path in
  (try output_string oc (to_string t)
   with e ->
     close_out oc;
     raise e);
  close_out oc
