(** The design-process level, in the spirit of Minerva (Jacome &
    Director, DAC'92) — the layer above Hercules where the paper places
    design decomposition.

    A process is a hierarchy of cells carrying goal requirements and
    designer assignments.  Status is {e derived}, never stored: a
    requirement is met when the workspace history holds an up-to-date
    instance of the goal entity derived from the cell's logic view —
    the section 3.3 consistency query lifted to process tracking. *)

open Ddf_store

type requirement = private {
  req_goal : string;  (** goal entity that must exist for the cell *)
}

type cell = private {
  cell_name : string;
  requirements : requirement list;
  assigned_to : string option;
  children : cell list;
}

type t

exception Process_error of string

val require : string -> requirement

val cell :
  ?requirements:requirement list -> ?assigned_to:string ->
  ?children:cell list -> string -> cell

val create : process_name:string -> cell -> t
(** @raise Process_error on duplicate cell names. *)

val all_cells : cell -> cell list
val find_cell : t -> string -> cell
val process_name : t -> string
val root : t -> cell

val cell_keyword : string -> string
(** The store keyword linking instances to a cell: ["cell:<name>"].
    Install a cell's design data with this keyword. *)

val logic_view : Ddf_exec.Engine.context -> cell -> Store.iid option
(** The newest netlist instance tagged with the cell's keyword. *)

type requirement_status =
  | No_logic_view
  | Missing
  | Met of Store.iid
  | Stale of Store.iid

type cell_report = {
  cr_cell : string;
  cr_assigned_to : string option;
  cr_statuses : (requirement * requirement_status) list;
  cr_complete : bool;
}

val requirement_status :
  Ddf_exec.Engine.context -> cell -> requirement -> requirement_status

val report_cell : Ddf_exec.Engine.context -> cell -> cell_report
val report : Ddf_exec.Engine.context -> t -> cell_report list

val completion : Ddf_exec.Engine.context -> t -> float
(** Fraction of requirement-bearing cells that are complete. *)

val worklist : Ddf_exec.Engine.context -> t -> designer:string -> string list
(** Cells the designer could work on now: theirs (or unassigned), with
    unmet requirements and a logic view to start from. *)

val status_name : requirement_status -> string
val pp_report : Format.formatter -> cell_report list -> unit
