lib/session/session.mli: Ddf_exec Ddf_graph Ddf_schema Ddf_store Store Task_graph
