lib/session/session.ml: Buffer Ddf_exec Ddf_graph Ddf_history Ddf_schema Ddf_store Format Hashtbl List Option Printf Schema Store String Task_graph
