(* The schemas used throughout the paper's figures.

   [fig1] is the example task schema of Fig. 1; [odyssey] extends it
   with the compiled-simulator subgraph of Fig. 2, the synthesis /
   verification entities of Fig. 8 and the PLA re-implementation task
   discussed in section 2, forming the full methodology used by the
   examples, tests and benchmarks. *)

(* Entity ids, named once so client code cannot misspell them. *)
module E = struct
  (* data *)
  let device_models = "device_models"
  let netlist = "netlist"
  let extracted_netlist = "extracted_netlist"
  let edited_netlist = "edited_netlist"
  let optimized_netlist = "optimized_netlist"
  let circuit = "circuit"
  let sim_options = "sim_options"
  let stimuli = "stimuli"
  let performance = "performance"
  let switch_performance = "switch_performance"
  let verification = "verification"
  let performance_plot = "performance_plot"
  let layout = "layout"
  let edited_layout = "edited_layout"
  let synthesized_layout = "synthesized_layout"
  let pla_layout = "pla_layout"
  let extraction_statistics = "extraction_statistics"
  let placement_options = "placement_options"
  let optimizer_options = "optimizer_options"

  let transistor_netlist = "transistor_netlist"

  (* tools *)
  let transistor_expander = "transistor_expander"
  let device_model_editor = "device_model_editor"
  let netlist_editor = "netlist_editor"
  let simulator = "simulator"
  let verifier = "verifier"
  let plotter = "plotter"
  let layout_editor = "layout_editor"
  let extractor = "extractor"
  let placer = "placer"
  let pla_generator = "pla_generator"
  let simulator_compiler = "simulator_compiler"
  let compiled_simulator = "compiled_simulator"
  let optimizer = "optimizer"
end

let d = Schema.data
let f = Schema.functional

let fig1_entities =
  [
    (* Primitive tools of Fig. 1. *)
    Schema.tool E.device_model_editor [];
    Schema.tool E.netlist_editor [];
    Schema.tool E.simulator [];
    Schema.tool E.verifier [];
    Schema.tool E.plotter [];
    Schema.tool E.layout_editor [];
    Schema.tool E.extractor [];
    (* Options are themselves an entity type (section 3.3). *)
    Schema.entity E.sim_options [];
    Schema.entity E.stimuli [];
    (* Device models: edited in place, the loop broken by an optional
       dependency. *)
    Schema.entity E.device_models
      [ f E.device_model_editor; d ~optional:true E.device_models ];
    (* Netlist has two construction methods, hence two subtypes. *)
    Schema.entity E.netlist [];
    Schema.entity ~parent:E.netlist E.edited_netlist
      [ f E.netlist_editor; d ~optional:true E.netlist ];
    Schema.entity ~parent:E.netlist E.extracted_netlist
      [ f E.extractor; d E.layout ];
    (* Extraction statistics are co-produced with the extracted netlist
       by the same task invocation (Fig. 5). *)
    Schema.entity E.extraction_statistics [ f E.extractor; d E.layout ];
    (* Circuit is a composite entity: only data dependencies. *)
    Schema.entity E.circuit [ d E.device_models; d E.netlist ];
    Schema.entity E.performance
      [ f E.simulator; d E.circuit; d E.stimuli; d ~optional:true E.sim_options ];
    Schema.entity E.verification
      [ f E.verifier; d ~role:"reference" E.netlist; d ~role:"candidate" E.netlist ];
    Schema.entity E.performance_plot [ f E.plotter; d E.performance ];
    Schema.entity E.layout [];
    Schema.entity ~parent:E.layout E.edited_layout
      [ f E.layout_editor; d ~optional:true E.layout;
        d ~role:"guide" ~optional:true E.netlist ];
  ]

let fig1 = Schema.create "fig1" fig1_entities

(* Fig. 2: a tool created during the design.  The compiled simulator is
   a tool entity with its own construction rule; running it yields a
   switch-level performance, a subtype of performance. *)
let fig2_entities =
  [
    Schema.tool E.simulator_compiler [];
    Schema.tool E.compiled_simulator [ f E.simulator_compiler; d E.netlist ];
    Schema.entity ~parent:E.performance E.switch_performance
      [ f E.compiled_simulator; d E.stimuli ];
  ]

(* Fig. 8 and section 2: synthesis from the transistor view, and the
   standard-cell-to-PLA re-implementation. *)
let synthesis_entities =
  [
    (* Fig. 7: the transistor view of a cell *)
    Schema.tool E.transistor_expander [];
    Schema.entity E.transistor_netlist
      [ f E.transistor_expander; d E.netlist ];
    Schema.tool E.placer [];
    Schema.entity E.placement_options [];
    Schema.entity ~parent:E.layout E.synthesized_layout
      [ f E.placer; d E.netlist; d ~optional:true E.placement_options ];
    Schema.tool E.pla_generator [];
    Schema.entity ~parent:E.layout E.pla_layout [ f E.pla_generator; d E.netlist ];
  ]

(* Three statistical optimizers share this single encapsulation point
   (section 3.3): one tool entity, several tool instances. *)
let optimizer_entities =
  [
    Schema.tool E.optimizer [];
    Schema.entity E.optimizer_options [];
    Schema.entity ~parent:E.netlist E.optimized_netlist
      [ f E.optimizer; d E.netlist; d ~optional:true E.optimizer_options;
        (* a tool serving as data input to another tool (section 3.3):
           an optimization procedure may have a simulator passed to it *)
        d ~role:"evaluator" ~optional:true E.compiled_simulator ];
  ]

let odyssey =
  Schema.create "odyssey"
    (fig1_entities @ fig2_entities @ synthesis_entities @ optimizer_entities)

let fig2 =
  Schema.create "fig2"
    ([
       Schema.tool E.extractor [];
       Schema.entity E.layout [];
       Schema.entity E.netlist [ f E.extractor; d E.layout ];
       Schema.entity E.stimuli [];
       Schema.entity E.performance [];
     ]
    @ fig2_entities)
