lib/schema/schema.mli: Format
