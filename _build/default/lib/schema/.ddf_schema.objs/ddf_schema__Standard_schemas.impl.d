lib/schema/standard_schemas.ml: Schema
