lib/schema/standard_schemas.mli: Schema
