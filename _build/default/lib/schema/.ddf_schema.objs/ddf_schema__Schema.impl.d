lib/schema/schema.ml: Buffer Fmt Format Hashtbl List Map Printf Set String
