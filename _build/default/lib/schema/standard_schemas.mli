(** The schemas appearing in the paper's figures.

    {!fig1} is the example task schema of Fig. 1.  {!fig2} is the
    compiled-simulator subgraph of Fig. 2 in isolation.  {!odyssey}
    is the union used by examples, tests and benchmarks: Fig. 1 plus
    Fig. 2, the synthesis/verification entities of Fig. 8, the PLA
    re-implementation task of section 2 and the shared statistical
    optimizers of section 3.3. *)

(** Well-known entity ids, so client code cannot misspell them. *)
module E : sig
  val device_models : string
  val netlist : string
  val extracted_netlist : string
  val edited_netlist : string
  val optimized_netlist : string
  val circuit : string
  val sim_options : string
  val stimuli : string
  val performance : string
  val switch_performance : string
  val verification : string
  val performance_plot : string
  val layout : string
  val edited_layout : string
  val synthesized_layout : string
  val pla_layout : string
  val extraction_statistics : string
  val placement_options : string
  val optimizer_options : string
  val transistor_netlist : string
  val transistor_expander : string
  val device_model_editor : string
  val netlist_editor : string
  val simulator : string
  val verifier : string
  val plotter : string
  val layout_editor : string
  val extractor : string
  val placer : string
  val pla_generator : string
  val simulator_compiler : string
  val compiled_simulator : string
  val optimizer : string
end

val fig1 : Schema.t

(** The raw entity list of {!fig1}, for rebuild benchmarks. *)
val fig1_entities : Schema.entity list
val fig2 : Schema.t
val odyssey : Schema.t
