lib/store/store.mli: Format
