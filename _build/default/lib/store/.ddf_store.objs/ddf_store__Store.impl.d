lib/store/store.ml: Fmt Format Hashtbl List Option String
