lib/history/history.mli: Ddf_graph Ddf_schema Ddf_store Format Schema Store
