lib/history/history.ml: Ddf_graph Ddf_schema Ddf_store Fmt Format Hashtbl List Option Schema Store
