(* Designer freedom: how many legal task orderings does a flow admit?

   Dynamically defined flows allow any topological order of the
   invocation DAG ("the designer should be able to perform any
   allowable task in any order"); a static flow allows exactly one.
   The count of linear extensions quantifies the difference. *)

open Ddf_graph

exception Too_many of int

(* Exact linear-extension count of the invocation DAG, with a cap so
   wide flows cannot blow up the computation. *)
let legal_orderings ?(cap = 10_000_000) g =
  let invocations = Array.of_list (Task_graph.invocations g) in
  let n = Array.length invocations in
  if n > 62 then raise (Too_many n);
  (* deps.(i) = bitmask of invocations that must precede i *)
  let producer = Hashtbl.create 32 in
  Array.iteri
    (fun i (inv : Task_graph.invocation) ->
      List.iter (fun o -> Hashtbl.replace producer o i) inv.Task_graph.outputs)
    invocations;
  let deps =
    Array.map
      (fun (inv : Task_graph.invocation) ->
        let ins =
          (match inv.Task_graph.tool with Some t -> [ t ] | None -> [])
          @ List.map snd inv.Task_graph.inputs
        in
        List.fold_left
          (fun mask node ->
            match Hashtbl.find_opt producer node with
            | Some i -> Int64.logor mask (Int64.shift_left 1L i)
            | None -> mask)
          0L ins)
      invocations
  in
  (* memoized count over the set of already-scheduled invocations *)
  let memo = Hashtbl.create 1024 in
  let full = if n = 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L in
  let rec count scheduled =
    if scheduled = full then 1
    else
      match Hashtbl.find_opt memo scheduled with
      | Some c -> c
      | None ->
        let total = ref 0 in
        for i = 0 to n - 1 do
          let bit = Int64.shift_left 1L i in
          let not_scheduled = Int64.logand scheduled bit = 0L in
          let ready = Int64.logand deps.(i) scheduled = deps.(i) in
          if not_scheduled && ready then begin
            total := !total + count (Int64.logor scheduled bit);
            if !total > cap then raise (Too_many !total)
          end
        done;
        Hashtbl.add memo scheduled !total;
        !total
  in
  count 0L

(* Sequences reachable when the designer may also stop early after any
   prefix (partial exploration, which dynamic flows permit and static
   flows do not). *)
let legal_prefixes ?(cap = 10_000_000) g =
  let invocations = Array.of_list (Task_graph.invocations g) in
  let n = Array.length invocations in
  if n > 62 then raise (Too_many n);
  let producer = Hashtbl.create 32 in
  Array.iteri
    (fun i (inv : Task_graph.invocation) ->
      List.iter (fun o -> Hashtbl.replace producer o i) inv.Task_graph.outputs)
    invocations;
  let deps =
    Array.map
      (fun (inv : Task_graph.invocation) ->
        let ins =
          (match inv.Task_graph.tool with Some t -> [ t ] | None -> [])
          @ List.map snd inv.Task_graph.inputs
        in
        List.fold_left
          (fun mask node ->
            match Hashtbl.find_opt producer node with
            | Some i -> Int64.logor mask (Int64.shift_left 1L i)
            | None -> mask)
          0L ins)
      invocations
  in
  let memo = Hashtbl.create 1024 in
  let rec count scheduled =
    match Hashtbl.find_opt memo scheduled with
    | Some c -> c
    | None ->
      let total = ref 1 in  (* stopping here is itself a valid prefix *)
      for i = 0 to n - 1 do
        let bit = Int64.shift_left 1L i in
        if Int64.logand scheduled bit = 0L
           && Int64.logand deps.(i) scheduled = deps.(i)
        then begin
          total := !total + count (Int64.logor scheduled bit);
          if !total > cap then raise (Too_many !total)
        end
      done;
      Hashtbl.add memo scheduled !total;
      !total
  in
  count 0L
