(* A traditional version tree (Fig. 11(a)), the versioning baseline.

   A dedicated version store keeps an explicit parent pointer per
   version -- and nothing else: it can answer ancestry questions but
   not "which tool, with which other inputs, produced this version",
   which the flow trace answers for free.  Experiment E11 compares
   storage and expressiveness. *)

type vid = int

type version = {
  vid : vid;
  parent : vid option;
  payload_hash : string;
  author : string;
  at : int;
}

type t = {
  mutable next : int;
  versions : (vid, version) Hashtbl.t;
  children : (vid, vid list ref) Hashtbl.t;
}

exception Version_error of string

let create () = { next = 1; versions = Hashtbl.create 16; children = Hashtbl.create 16 }

let check_in t ?parent ~payload_hash ~author ~at () =
  (match parent with
  | Some p when not (Hashtbl.mem t.versions p) ->
    raise (Version_error (Printf.sprintf "no parent version %d" p))
  | Some _ | None -> ());
  let vid = t.next in
  t.next <- vid + 1;
  Hashtbl.add t.versions vid { vid; parent; payload_hash; author; at };
  (match parent with
  | None -> ()
  | Some p ->
    let l =
      match Hashtbl.find_opt t.children p with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add t.children p l;
        l
    in
    l := vid :: !l);
  vid

let find t vid =
  match Hashtbl.find_opt t.versions vid with
  | Some v -> v
  | None -> raise (Version_error (Printf.sprintf "no version %d" vid))

let parent t vid = (find t vid).parent

let children t vid =
  match Hashtbl.find_opt t.children vid with
  | Some l -> List.sort compare !l
  | None -> []

let size t = Hashtbl.length t.versions

let roots t =
  Hashtbl.fold
    (fun vid v acc -> if v.parent = None then vid :: acc else acc)
    t.versions []
  |> List.sort compare

(* The tree shape as nested lists, for comparison against the tree
   reconstructed from flow traces. *)
type shape = Node of string * shape list

let rec shape_of t vid =
  let v = find t vid in
  Node (v.payload_hash, List.map (shape_of t) (children t vid))

(* Meta-data footprint per version: parent pointer + hash + author +
   timestamp.  The history-based scheme stores tool and role bindings
   too; the experiment reports both so the overhead of the richer
   record is visible. *)
let metadata_bytes t =
  Hashtbl.fold
    (fun _ v acc ->
      acc + 8 (* parent *) + String.length v.payload_hash
      + String.length v.author + 8 (* timestamp *))
    t.versions 0

(* What a version tree cannot answer (the paper's Fig. 11 point). *)
let tool_used (_ : t) (_ : vid) : string option = None

let pp ppf t =
  let rec render ppf vid =
    let v = find t vid in
    match children t vid with
    | [] -> Fmt.pf ppf "v%d" v.vid
    | kids -> Fmt.pf ppf "v%d(%a)" v.vid (Fmt.list ~sep:Fmt.comma render) kids
  in
  Fmt.pf ppf "@[<h>version tree: %a@]" (Fmt.list ~sep:Fmt.sp render) (roots t)
