(* A make-style timestamp build system, the consistency-maintenance
   baseline.

   Make rebuilds a target whenever a dependency's modification time is
   newer, regardless of whether its content changed; derivation-based
   memoization (the design history) rebuilds only when the actual input
   instances differ.  Experiment A3 measures the gap on both an
   identical-content touch and a real edit. *)

module String_map = Map.Make (String)

type rule = {
  target : string;
  deps : string list;
  cost_us : int;
}

type t = {
  rules : rule String_map.t;
  mutable mtimes : int String_map.t;
  mutable clock : int;
}

exception Make_error of string

let create rules =
  let add acc r =
    if String_map.mem r.target acc then
      raise (Make_error ("duplicate rule for " ^ r.target))
    else String_map.add r.target r acc
  in
  {
    rules = List.fold_left add String_map.empty rules;
    mtimes = String_map.empty;
    clock = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let mtime t name = String_map.find_opt name t.mtimes

(* Touch a source file: bump its mtime (content irrelevant, as in
   [touch(1)]). *)
let touch t name = t.mtimes <- String_map.add name (tick t) t.mtimes

type build_report = {
  rebuilt : string list;   (* targets whose recipes ran, in order *)
  up_to_date : int;
  total_cost_us : int;
}

(* Classic recursive make: rebuild when missing or older than any
   dependency. *)
let build t goal =
  let rebuilt = ref [] and fresh = ref 0 and cost = ref 0 in
  let rec ensure name =
    match String_map.find_opt name t.rules with
    | None ->
      (* a source: must exist *)
      (match mtime t name with
      | Some m -> m
      | None -> raise (Make_error ("missing source " ^ name)))
    | Some rule ->
      let dep_times = List.map ensure rule.deps in
      let newest_dep = List.fold_left max 0 dep_times in
      (match mtime t name with
      | Some m when m >= newest_dep ->
        incr fresh;
        m
      | Some _ | None ->
        let m = tick t in
        t.mtimes <- String_map.add name m t.mtimes;
        rebuilt := name :: !rebuilt;
        cost := !cost + rule.cost_us;
        m)
  in
  ignore (ensure goal);
  { rebuilt = List.rev !rebuilt; up_to_date = !fresh; total_cost_us = !cost }

let pp_report ppf r =
  Fmt.pf ppf "rebuilt %d (%s), %d up to date, cost %d us"
    (List.length r.rebuilt)
    (String.concat "," r.rebuilt)
    r.up_to_date r.total_cost_us
