(** Designer freedom: how many legal task orderings a flow admits.

    Dynamic flows allow any topological order of the invocation DAG
    ("any allowable task in any order"); a static flow allows one.
    Exact linear-extension counting over the invocation DAG, memoized
    over scheduled-sets (so up to 62 invocations). *)

exception Too_many of int

val legal_orderings : ?cap:int -> Ddf_graph.Task_graph.t -> int
(** The number of complete legal task sequences.
    @raise Too_many past [cap] or 62 invocations. *)

val legal_prefixes : ?cap:int -> Ddf_graph.Task_graph.t -> int
(** Sequences when the designer may also stop after any prefix —
    partial exploration, which static flows do not permit. *)
