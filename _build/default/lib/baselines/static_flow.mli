(** JESSI-style static flows: the baseline the paper argues against.

    A static flow is a predefined sequence of activities, each
    hardwired to a specific tool, followed step by step — the "flow
    straight-jacket" of Rumsey & Farquhar.  Experiments A1/A4 quantify
    the consequences: one legal order per flow, and tool changes
    invalidating every flow mentioning them. *)

open Ddf_graph

type activity = {
  act_name : string;
  hardwired_tool : string;
  consumes : string list;
  produces : string list;
}

type t = {
  flow_name : string;
  activities : activity list;  (** the mandated order *)
}

exception Static_flow_error of string

val create : string -> activity list -> t
val length : t -> int

val of_task_graph : ?name:string -> Task_graph.t -> t
(** Freeze a dynamic flow: invocation order fixed to the deterministic
    topological order, tools hardwired. *)

val next_step : t -> completed:int -> activity option
(** The straight-jacket: after [completed] steps, only the next
    activity is allowed. @raise Static_flow_error on a bad index. *)

val conforms : t -> (string * string list) list -> bool
(** Does an executed [(tool, produced)] sequence match the mandated
    order exactly? *)

val flows_mentioning : t list -> tool:string -> t list
val maintenance_burden : t list -> tool:string -> int
(** Flows that must be rewritten when the tool changes. *)

val pp : Format.formatter -> t -> unit
