lib/baselines/version_tree.mli: Format
