lib/baselines/freedom.ml: Array Ddf_graph Hashtbl Int64 List Task_graph
