lib/baselines/static_flow.ml: Ddf_graph Fmt Hashtbl List Printf String Task_graph
