lib/baselines/freedom.mli: Ddf_graph
