lib/baselines/trace_capture.ml: Ddf_schema Fmt List Printf Schema String
