lib/baselines/trace_capture.mli: Ddf_schema Format Schema
