lib/baselines/make_style.ml: Fmt List Map String
