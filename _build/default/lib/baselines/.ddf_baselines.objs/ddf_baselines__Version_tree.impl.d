lib/baselines/version_tree.ml: Fmt Hashtbl List Printf String
