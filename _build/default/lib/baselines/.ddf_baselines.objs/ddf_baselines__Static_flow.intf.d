lib/baselines/static_flow.mli: Ddf_graph Format Task_graph
