lib/baselines/make_style.mli: Format
