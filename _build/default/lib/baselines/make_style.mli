(** A make-style timestamp build system: the consistency baseline.

    Make rebuilds a target whenever a dependency's mtime is newer,
    regardless of content; derivation-based memoization rebuilds only
    when actual inputs differ.  Experiment A3 measures the gap. *)

type rule = {
  target : string;
  deps : string list;
  cost_us : int;
}

type t

exception Make_error of string

val create : rule list -> t
(** @raise Make_error on duplicate targets. *)

val tick : t -> int
val mtime : t -> string -> int option

val touch : t -> string -> unit
(** Bump a source's mtime; content is irrelevant, as in touch(1). *)

type build_report = {
  rebuilt : string list;   (** recipes run, in order *)
  up_to_date : int;
  total_cost_us : int;
}

val build : t -> string -> build_report
(** Classic recursive make. @raise Make_error on missing sources. *)

val pp_report : Format.formatter -> build_report -> unit
