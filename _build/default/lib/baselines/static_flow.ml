(* JESSI-style static flows (the baseline the paper argues against).

   A static flow is a predefined sequence of activities, each hardwired
   to a specific tool, that the designer must follow step by step --
   the "flow straight-jacket" of Rumsey & Farquhar.  The experiments
   quantify two consequences: designers get exactly one legal task
   order per flow, and a tool change invalidates every flow that
   mentions it. *)

open Ddf_graph

type activity = {
  act_name : string;
  hardwired_tool : string;   (* concrete tool, not a tool entity *)
  consumes : string list;
  produces : string list;
}

type t = {
  flow_name : string;
  activities : activity list;  (* the mandated order *)
}

exception Static_flow_error of string

let create flow_name activities = { flow_name; activities }

let length f = List.length f.activities

(* Freeze a dynamic flow into a static one: the invocation order is
   fixed to the deterministic topological order, tools are hardwired to
   their current nodes' entities. *)
let of_task_graph ?(name = "frozen") g =
  let rank = Hashtbl.create 32 in
  List.iteri (fun i nid -> Hashtbl.add rank nid i) (Task_graph.topological_order g);
  let activities =
    Task_graph.invocations g
    |> List.map (fun (inv : Task_graph.invocation) ->
           let r =
             List.fold_left
               (fun m o -> min m (Hashtbl.find rank o))
               max_int inv.Task_graph.outputs
           in
           (r, inv))
    |> List.sort compare
    |> List.mapi (fun i (_, (inv : Task_graph.invocation)) ->
           {
             act_name = Printf.sprintf "step%d" (i + 1);
             hardwired_tool =
               (match inv.Task_graph.tool with
               | Some t -> Task_graph.entity_of g t
               | None -> "builtin-compose");
             consumes =
               List.map (fun (_, n) -> Task_graph.entity_of g n) inv.Task_graph.inputs;
             produces = List.map (Task_graph.entity_of g) inv.Task_graph.outputs;
           })
  in
  { flow_name = name; activities }

(* The straight-jacket: the only next step is the next activity. *)
let next_step f ~completed =
  if completed < 0 || completed > length f then
    raise (Static_flow_error "bad progress index");
  List.nth_opt f.activities completed

(* Does an executed sequence of (tool, produced-entity) steps conform
   to the mandated order?  Dynamic flows allow any topological order;
   the static flow accepts exactly its own. *)
let conforms f steps =
  let expected =
    List.map (fun a -> (a.hardwired_tool, a.produces)) f.activities
  in
  expected = steps

(* How many flows in a catalog must be rewritten when a tool changes
   (the paper: static flows "require modification whenever tool changes
   are made")? *)
let flows_mentioning catalog ~tool =
  List.filter
    (fun f -> List.exists (fun a -> a.hardwired_tool = tool) f.activities)
    catalog

let maintenance_burden catalog ~tool = List.length (flows_mentioning catalog ~tool)

let pp ppf f =
  Fmt.pf ppf "@[<v>static flow %s:@,%a@]" f.flow_name
    (Fmt.list ~sep:Fmt.cut (fun ppf a ->
         Fmt.pf ppf "%s: %s (%s) -> %s" a.act_name a.hardwired_tool
           (String.concat "," a.consumes)
           (String.concat "," a.produces)))
    f.activities
