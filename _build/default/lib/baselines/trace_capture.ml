(* Casotto-style design traces (DAC'90), the paper's other baseline.

   A trace is a historical record of tool invocations, captured with no
   schema: anything the designer does is accepted.  Existing traces can
   be replayed as prototypes for new activities.  What the approach
   lacks -- and what the experiments measure -- is methodology
   enforcement (illegal steps are captured just as happily) and
   generalized indexing (traces are tied to concrete file names, not
   entity types). *)

open Ddf_schema

type event = {
  ev_tool : string;
  ev_consumed : string list;   (* concrete object names *)
  ev_produced : string list;
}

type trace = {
  trace_name : string;
  events : event list;  (* chronological *)
}

type t = {
  mutable current : event list;  (* reversed *)
  mutable archive : trace list;
}

let create () = { current = []; archive = [] }

(* Capture accepts anything: that is the point. *)
let capture t ~tool ~consumed ~produced =
  t.current <- { ev_tool = tool; ev_consumed = consumed; ev_produced = produced }
                :: t.current

let cut t name =
  let tr = { trace_name = name; events = List.rev t.current } in
  t.archive <- tr :: t.archive;
  t.current <- [];
  tr

let archive t = List.rev t.archive

(* Replay a trace as a prototype: substitute new object names through a
   mapping; names without a mapping are kept (shared libraries etc.). *)
let replay tr ~substitute =
  let sub name = match List.assoc_opt name substitute with
    | Some n -> n
    | None -> name
  in
  {
    trace_name = tr.trace_name ^ "_replay";
    events =
      List.map
        (fun e ->
          {
            ev_tool = e.ev_tool;
            ev_consumed = List.map sub e.ev_consumed;
            ev_produced = List.map sub e.ev_produced;
          })
        tr.events;
  }

(* Indexing is by concrete object name only: finding the traces that
   touched an object requires a scan, and there is no entity-type
   generalization (a "netlist" query is impossible). *)
let traces_touching t name =
  List.filter
    (fun tr ->
      List.exists
        (fun e -> List.mem name e.ev_consumed || List.mem name e.ev_produced)
        tr.events)
    (archive t)

(* Post-hoc schema check: which captured events would a schema-checked
   system have rejected?  [typing] maps a concrete object name to its
   entity type. *)
type violation = {
  v_event : event;
  v_reason : string;
}

let check_against_schema schema ~typing tr =
  let violations = ref [] in
  let fail e reason = violations := { v_event = e; v_reason = reason } :: !violations in
  List.iter
    (fun e ->
      match e.ev_produced with
      | [] -> fail e "produced nothing"
      | produced ->
        List.iter
          (fun out ->
            match typing out with
            | None -> fail e (Printf.sprintf "unknown object %s" out)
            | Some entity -> (
              if not (Schema.mem schema entity) then
                fail e (Printf.sprintf "no entity %s in schema" entity)
              else
                match Schema.functional_dep schema entity with
                | None ->
                  if Schema.effective_deps schema entity = [] && e.ev_tool <> "" then
                    fail e
                      (Printf.sprintf "%s is a source entity, no tool may produce it"
                         entity)
                | Some d ->
                  if not (Schema.is_subtype schema ~sub:e.ev_tool ~super:d.Schema.target)
                  then
                    fail e
                      (Printf.sprintf "%s must be produced by %s, not %s" entity
                         d.Schema.target e.ev_tool)))
          produced)
    tr.events;
  List.rev !violations

let pp_trace ppf tr =
  Fmt.pf ppf "@[<v>trace %s:@,%a@]" tr.trace_name
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "%s (%s) -> %s" e.ev_tool
           (String.concat "," e.ev_consumed)
           (String.concat "," e.ev_produced)))
    tr.events
