(** A traditional version tree (Fig. 11(a)): the versioning baseline.

    A dedicated version store keeps an explicit parent pointer per
    version — and nothing else: ancestry yes, but not "which tool, with
    which other inputs, produced this version", which the flow trace
    answers for free.  Experiment E11 compares the two. *)

type vid = int

type version = private {
  vid : vid;
  parent : vid option;
  payload_hash : string;
  author : string;
  at : int;
}

type t

exception Version_error of string

val create : unit -> t

val check_in :
  t -> ?parent:vid -> payload_hash:string -> author:string -> at:int -> unit ->
  vid
(** @raise Version_error on an unknown parent. *)

val find : t -> vid -> version
val parent : t -> vid -> vid option
val children : t -> vid -> vid list
val size : t -> int
val roots : t -> vid list

type shape = Node of string * shape list

val shape_of : t -> vid -> shape
(** The tree's payload-hash shape, for comparison against the tree
    reconstructed from flow traces. *)

val metadata_bytes : t -> int
(** Meta-data footprint: parent + hash + author + timestamp per
    version. *)

val tool_used : t -> vid -> string option
(** Always [None]: the expressiveness gap of Fig. 11. *)

val pp : Format.formatter -> t -> unit
