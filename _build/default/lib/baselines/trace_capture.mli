(** Casotto-style design traces (DAC'90): the capture-everything
    baseline.

    A trace records tool invocations with no schema: anything is
    accepted, and existing traces replay as prototypes.  What the
    approach lacks — measured by experiment A2 — is methodology
    enforcement and generalized (entity-typed) indexing. *)

open Ddf_schema

type event = {
  ev_tool : string;
  ev_consumed : string list;   (** concrete object names *)
  ev_produced : string list;
}

type trace = {
  trace_name : string;
  events : event list;
}

type t

val create : unit -> t

val capture : t -> tool:string -> consumed:string list -> produced:string list -> unit
(** Capture accepts anything: that is the point. *)

val cut : t -> string -> trace
(** Close the current trace under a name and archive it. *)

val archive : t -> trace list

val replay : trace -> substitute:(string * string) list -> trace
(** A trace as a prototype for a new activity: substitute object
    names; unmapped names are kept. *)

val traces_touching : t -> string -> trace list
(** Indexing is by concrete name only; no entity-type queries exist. *)

type violation = {
  v_event : event;
  v_reason : string;
}

val check_against_schema :
  Schema.t -> typing:(string -> string option) -> trace -> violation list
(** Post-hoc legality check — possible only given the typing
    information traces themselves lack. *)

val pp_trace : Format.formatter -> trace -> unit
