(* View management through flows (Figs. 7 and 8).

   The inverter cell of Fig. 7 in its three views -- logic, transistor
   level and physical -- with the synthesis flow deriving the physical
   view from the logic view (Fig. 8a) and the verification flow
   checking their correspondence (Fig. 8b).  A careless layout edit
   then breaks the correspondence, the history flags the derived data
   as out of date, and consistency maintenance re-traces the flow. *)

open Ddf
module E = Standard_schemas.E

let () =
  let w = Workspace.create ~user:"director" () in
  let ctx = Workspace.ctx w in

  (* ---- Fig. 7: three views of the inverter cell -------------------- *)
  print_endline "# Fig. 7: three views of an inverter cell";
  let inverter = Eda.Circuits.inverter () in
  let logic_iid = Workspace.install_netlist w ~label:"inverter logic" inverter in
  let views =
    Views.derive_views ctx ~logic:logic_iid
      ~placer_tool:(Workspace.tool w E.placer)
      ~expander_tool:(Workspace.tool w E.transistor_expander)
  in
  Format.printf "logic view:      %a@." Value.pp (Workspace.payload w views.Views.cv_logic);
  Format.printf "transistor view: %a@." Value.pp (Workspace.payload w views.Views.cv_transistor);
  Format.printf "physical view:   %a@." Value.pp (Workspace.payload w views.Views.cv_physical);
  let rng = Eda.Rng.create 11 in
  Printf.printf "logic/transistor correspondence: %b\n\n"
    (Views.transistor_corresponds ctx ~logic:logic_iid
       ~transistor:views.Views.cv_transistor rng);

  (* ---- Fig. 8(b): verification flow -------------------------------- *)
  print_endline "# Fig. 8(b): verify physical view against logic view";
  let _, verdict =
    Views.verify_physical ctx ~logic:logic_iid ~physical:views.Views.cv_physical
      ~extractor_tool:(Workspace.tool w E.extractor)
      ~verifier_tool:(Workspace.tool w E.verifier)
  in
  Printf.printf "inverter physical == logic: %b\n\n" verdict.Eda.Lvs.equivalent;

  (* the same on a full adder *)
  let fa = Eda.Circuits.full_adder () in
  let fa_logic = Workspace.install_netlist w ~label:"full adder logic" fa in
  let fa_views =
    Views.derive_views ctx ~logic:fa_logic
      ~placer_tool:(Workspace.tool w E.placer)
      ~expander_tool:(Workspace.tool w E.transistor_expander)
  in
  let _, fa_verdict =
    Views.verify_physical ctx ~logic:fa_logic ~physical:fa_views.Views.cv_physical
      ~extractor_tool:(Workspace.tool w E.extractor)
      ~verifier_tool:(Workspace.tool w E.verifier)
  in
  Printf.printf "full adder physical == logic: %b\n\n" fa_verdict.Eda.Lvs.equivalent;

  (* ---- a careless edit breaks the correspondence -------------------- *)
  print_endline "# a layout edit without rerouting breaks LVS";
  let edit_session =
    Workspace.install_layout_editor_session w ~label:"move g_cout"
      [ Eda.Layout.Move_cell ("g_cout", 6, 0) ]
  in
  (* build the editing flow: edited_layout <- (editor, layout) *)
  let g, edited = Task_graph.create (Workspace.schema w) E.edited_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g edited in
  let editor_node = match fresh with [ e ] -> e | _ -> assert false in
  let g, layout_node = Task_graph.add_node g E.layout in
  let g = Task_graph.connect g ~user:edited ~role:E.layout ~dep:layout_node in
  let run =
    Engine.execute ctx g
      ~bindings:
        [ (editor_node, edit_session); (layout_node, fa_views.Views.cv_physical) ]
  in
  let broken_layout = Engine.result_of run edited in
  let _, broken_verdict =
    Views.verify_physical ctx ~logic:fa_logic ~physical:broken_layout
      ~extractor_tool:(Workspace.tool w E.extractor)
      ~verifier_tool:(Workspace.tool w E.verifier)
  in
  Printf.printf "after the edit, physical == logic: %b\n"
    broken_verdict.Eda.Lvs.equivalent;
  List.iter
    (fun m -> print_endline ("  " ^ Eda.Lvs.mismatch_to_string m))
    (match broken_verdict.Eda.Lvs.mismatches with
    | a :: b :: _ -> [ a; b ]
    | l -> l);

  (* ---- consistency: edit the logic, derived views go stale ---------- *)
  print_endline "\n# consistency maintenance (section 3.3)";
  (* the designer edits the logic view: a new version of the netlist *)
  let buffer_edit =
    Workspace.install_editor_session w ~label:"buffer the sum net"
      (Eda.Edit_script.create ~name:"buffer sum"
         [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "g_newbuf" } ])
  in
  let g, edited = Task_graph.create (Workspace.schema w) E.edited_netlist in
  let g, fresh = Task_graph.expand g edited in
  let editor_node, source_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let run =
    Engine.execute ctx g
      ~bindings:[ (editor_node, buffer_edit); (source_node, fa_logic) ]
  in
  let new_logic = Engine.result_of run edited in
  Printf.printf "edited the logic view: #%d -> new version #%d\n" fa_logic
    new_logic;

  (* the physical view synthesized from the old netlist is out of date *)
  (match
     Consistency.derived_status ctx ~source:fa_logic
       ~goal_entity:E.synthesized_layout
   with
  | Consistency.Up_to_date iid ->
    Printf.printf "physical view #%d is up to date\n" iid
  | Consistency.Out_of_date (iid, stale) ->
    Printf.printf "physical view #%d is OUT OF DATE (%d stale inputs)\n" iid
      (List.length stale)
  | Consistency.Never_extracted -> print_endline "never synthesized");

  (* automatic re-tracing: only the stale sub-flow re-runs *)
  let report = Consistency.refresh ctx fa_views.Views.cv_physical in
  Format.printf "refresh physical view: %a@." Consistency.pp_report report;
  let refreshed = Workspace.layout_of w report.Consistency.fresh_instance in
  Printf.printf "refreshed layout now has %d cells (was %d)\n"
    (Eda.Layout.cell_count refreshed)
    (Eda.Layout.cell_count (Workspace.layout_of w fa_views.Views.cv_physical))
