(* Quickstart: obtain a circuit performance from an existing netlist,
   exactly the walkthrough of section 4.1.

   The designer starts goal-based from the entity catalog, builds the
   flow with expand operations, selects instances for the leaf nodes in
   the browser, runs the flow, and finally browses the design history
   of the result (Fig. 10). *)

open Ddf
module E = Standard_schemas.E

let () =
  let w = Workspace.create ~user:"sutton" () in
  let session = Workspace.session w in

  (* put some design data in the store: the c17 benchmark netlist and a
     set of exhaustive stimuli *)
  let netlist = Eda.Circuits.c17 () in
  let netlist_iid =
    Workspace.install_netlist w ~label:"c17 benchmark" ~keywords:[ "iscas85" ]
      netlist
  in
  let stimuli_iid =
    Workspace.install_stimuli w ~label:"c17 exhaustive"
      (Eda.Stimuli.exhaustive netlist.Eda.Netlist.primary_inputs)
  in

  (* goal-based start: select the goal entity from the entity catalog *)
  print_endline "# 1. start goal-based from the entity catalog";
  let performance_node = Session.start_goal_based session E.performance in

  (* expand: the simulator, circuit, stimuli and sim-options appear *)
  let fresh = Session.expand session performance_node in
  Printf.printf "expanding performance adds %d nodes\n" (List.length fresh);

  (* the circuit is composite: expand it into models + netlist *)
  let flow = Session.current_flow session in
  let find_node entity =
    match
      List.find_opt
        (fun (n : Task_graph.node) -> n.Task_graph.entity = entity)
        (Task_graph.nodes flow)
    with
    | Some n -> n.Task_graph.nid
    | None -> failwith ("no node for " ^ entity)
  in
  let circuit_node = find_node E.circuit in
  ignore (Session.expand session circuit_node);
  print_endline (Session.render_task_window session);

  (* select instances for the leaves, as in the Fig. 9 browser *)
  print_endline "# 2. select instances for the leaf nodes";
  let flow = Session.current_flow session in
  let find_node entity =
    match
      List.find_opt
        (fun (n : Task_graph.node) -> n.Task_graph.entity = entity)
        (Task_graph.nodes flow)
    with
    | Some n -> n.Task_graph.nid
    | None -> failwith ("no node for " ^ entity)
  in
  Session.select session (find_node E.simulator) [ Workspace.tool w E.simulator ];
  Session.select session (find_node E.netlist) [ netlist_iid ];
  Session.select session (find_node E.device_models)
    [ Workspace.default_device_models w ];
  Session.select session (find_node E.stimuli) [ stimuli_iid ];
  print_endline (Session.render_browser session (find_node E.netlist));

  (* run the flow *)
  print_endline "# 3. run";
  let results = Session.run session performance_node in
  let performance_iid = List.hd results in
  Format.printf "produced instance #%d: %a@." performance_iid Value.pp
    (Workspace.payload w performance_iid);

  (* plot it by expanding upward from the performance *)
  print_endline "\n# 4. expand upward to a performance plot and rerun";
  let plot_node, _ =
    Session.expand_up session performance_node ~consumer:E.performance_plot
  in
  let flow = Session.current_flow session in
  let plotter_node =
    match Task_graph.dep_of flow plot_node "tool" with
    | Some nid -> nid
    | None -> failwith "no plotter node"
  in
  Session.select session plotter_node [ Workspace.tool w E.plotter ];
  let plot_iid = List.hd (Session.run session plot_node) in
  (match Workspace.payload w plot_iid with
  | Value.Plot p -> print_string p.Eda.Plot.rendering
  | _ -> assert false);

  (* browse the design history of the plot: backward chaining *)
  print_endline "# 5. derivation history of the plot (backward chaining)";
  let trace_graph, _root, binding = Session.history_of session plot_iid in
  print_string (Task_graph.to_ascii trace_graph);
  Printf.printf "(%d instances in the derivation)\n" (List.length binding);

  (* forward chaining: everything derived from the netlist *)
  let derived = Session.uses_of session netlist_iid in
  Printf.printf "instances derived from the netlist: %s\n"
    (String.concat ", " (List.map (fun i -> "#" ^ string_of_int i) derived));

  (* the engine memoizes: re-running the same flow consumes no work *)
  print_endline "\n# 6. re-run: everything is a memo hit";
  let again = List.hd (Session.run session plot_node) in
  Printf.printf "re-run produced #%d (same instance: %b)\n" again
    (again = plot_iid)
