(* Fig. 2: a tool created during the design.

   The simulator compiler turns a netlist into a compiled simulator --
   a tool instance that is itself a design object with a derivation
   history -- which then runs on different stimuli.  The crossover
   between "compile once, run fast" and the interpretive event-driven
   simulator is the shape COSMOS reported. *)

open Ddf
module E = Standard_schemas.E

let () =
  let w = Workspace.create ~user:"bryant" () in
  let ctx = Workspace.ctx w in

  let nl = Eda.Circuits.ripple_adder 8 in
  let nl_iid = Workspace.install_netlist w ~label:"adder8" nl in
  let rng = Eda.Rng.create 99 in
  let stim_small = Eda.Stimuli.for_netlist ~n:4 nl rng in
  let stim_large = Eda.Stimuli.for_netlist ~n:256 nl rng in
  let small_iid = Workspace.install_stimuli w ~label:"4 vectors" stim_small in
  let large_iid = Workspace.install_stimuli w ~label:"256 vectors" stim_large in

  (* ---- the Fig. 2 flow --------------------------------------------- *)
  print_endline "# the Fig. 2 flow: switch_performance via a compiled tool";
  let f = Standard_flows.fig2 () in
  let g = f.Standard_flows.f2_graph in
  print_string (Task_graph.to_ascii g);
  let bindings =
    Workspace.bind_catalog_tools w g
      ~already:
        [ (f.Standard_flows.f2_netlist, nl_iid);
          (f.Standard_flows.f2_stimuli, small_iid) ]
  in
  let run = Engine.execute ctx g ~bindings in
  let sim_iid = Engine.result_of run f.Standard_flows.f2_compiled_simulator in
  Format.printf "\nthe tool created during design -> #%d: %a@." sim_iid Value.pp
    (Workspace.payload w sim_iid);
  Format.printf "its own derivation: %a@."
    (Fmt.option History.pp_record)
    (History.derivation_of (Workspace.history w) sim_iid);

  (* reuse the SAME compiled simulator on other stimuli: only the run
     task executes, the compile is found in the history *)
  print_endline "\n# rerun on different stimuli (the compile memo-hits)";
  let g2, perf = Task_graph.create (Workspace.schema w) E.switch_performance in
  let g2, fresh = Task_graph.expand g2 perf in
  let sim_node, stim_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let run2 =
    Engine.execute ctx g2
      ~bindings:[ (sim_node, sim_iid); (stim_node, large_iid) ]
  in
  Format.printf "second run: %a@." Engine.pp_stats run2.Engine.stats;
  Format.printf "result: %a@." Value.pp
    (Workspace.payload w (Engine.result_of run2 perf));

  (* ---- a sequential design through the same flow -------------------- *)
  print_endline "\n# sequential designs: a counter through the Fig. 2 flow";
  let counter = Eda.Circuits.counter 4 in
  let counter_iid = Workspace.install_netlist w ~label:"counter4" counter in
  let clk_iid =
    Workspace.install_stimuli w ~label:"10 enabled cycles"
      (Eda.Stimuli.create
         (List.init 10 (fun _ -> [ ("en", Eda.Logic.V1) ])))
  in
  let f2 = Standard_flows.fig2 () in
  let bindings =
    Workspace.bind_catalog_tools w f2.Standard_flows.f2_graph
      ~already:
        [ (f2.Standard_flows.f2_netlist, counter_iid);
          (f2.Standard_flows.f2_stimuli, clk_iid) ]
  in
  let seq_run = Engine.execute ctx f2.Standard_flows.f2_graph ~bindings in
  let sim2 =
    Engine.result_of seq_run f2.Standard_flows.f2_compiled_simulator
  in
  (match Workspace.payload w sim2 with
  | Value.Tool (Value.Compiled_simulator c) ->
    let counts =
      Eda.Sim_compiled.run c
        (Eda.Stimuli.create (List.init 10 (fun _ -> [ ("en", Eda.Logic.V1) ])))
      |> List.map (fun outs ->
             List.fold_left
               (fun (acc, i) (_, v) ->
                 match Eda.Logic.to_bool v with
                 | Some true -> (acc lor (1 lsl i), i + 1)
                 | _ -> (acc, i + 1))
               (0, 0) outs
             |> fst)
    in
    Printf.printf "counter trajectory: %s\n"
      (String.concat " " (List.map string_of_int counts))
  | _ -> assert false);

  (* ---- compile/run crossover --------------------------------------- *)
  print_endline "\n# compiled vs event-driven: crossover in vector count";
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    ignore (Sys.opaque_identity x);
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  Printf.printf "%8s %14s %14s %14s\n" "vectors" "event (us)" "compile (us)"
    "comp-run (us)";
  let compile_us = time (fun () -> Eda.Sim_compiled.compile nl) in
  let compiled = Eda.Sim_compiled.compile nl in
  List.iter
    (fun k ->
      let stim = Eda.Stimuli.for_netlist ~n:k nl (Eda.Rng.create 5) in
      let event_us = time (fun () -> Eda.Sim_event.run nl stim) in
      let run_us = time (fun () -> Eda.Sim_compiled.run compiled stim) in
      Printf.printf "%8d %14.0f %14.0f %14.0f\n" k event_us compile_us run_us)
    [ 1; 4; 16; 64; 256 ]
