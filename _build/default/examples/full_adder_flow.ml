(* The complex flow of Fig. 5 on a CMOS full adder, followed by the
   parallel execution of Fig. 6.

   One extractor invocation produces two outputs (the extracted netlist
   and the extraction statistics); the extracted netlist is reused by
   two sub-tasks (the circuit being simulated, and the verification
   against a reference netlist); the flow has several roots.  Disjoint
   branches then execute in parallel on a simulated machine pool and on
   real domains. *)

open Ddf
module E = Standard_schemas.E

let () =
  let w = Workspace.create ~user:"brockman" () in
  let ctx = Workspace.ctx w in

  (* design data: a full-adder layout (placed from the reference
     netlist, as a layout designer would deliver it) *)
  let reference = Eda.Circuits.full_adder () in
  let layout = Eda.Layout.place reference in
  let reference_iid = Workspace.install_netlist w ~label:"full adder spec" reference in
  let layout_iid = Workspace.install_layout w ~label:"full adder layout" layout in
  let stimuli_iid =
    Workspace.install_stimuli w ~label:"exhaustive fa"
      (Eda.Stimuli.exhaustive reference.Eda.Netlist.primary_inputs)
  in

  print_endline "# the Fig. 5 flow (entity reuse + multiple outputs)";
  let f = Standard_flows.fig5 () in
  let g = f.Standard_flows.f5_graph in
  print_string (Task_graph.to_ascii g);
  Printf.printf "invocations: %d (extractor run once for two outputs)\n\n"
    (List.length (Task_graph.invocations g));

  let bindings =
    Workspace.bind_catalog_tools w g
      ~already:
        [
          (f.Standard_flows.f5_layout, layout_iid);
          (f.Standard_flows.f5_stimuli, stimuli_iid);
          (f.Standard_flows.f5_reference, reference_iid);
          (f.Standard_flows.f5_device_models, Workspace.default_device_models w);
        ]
  in
  let run = Engine.execute ctx g ~bindings in
  Format.printf "run: %a@." Engine.pp_stats run.Engine.stats;

  let show nid what =
    let iid = Engine.result_of run nid in
    Format.printf "%s -> #%d: %a@." what iid Value.pp (Workspace.payload w iid)
  in
  show f.Standard_flows.f5_extracted "extracted netlist ";
  show f.Standard_flows.f5_statistics "extraction stats  ";
  show f.Standard_flows.f5_performance "performance       ";
  show f.Standard_flows.f5_verification "verification      ";

  (* the two outputs of the extractor share one derivation record *)
  let r1 =
    History.derivation_of (Workspace.history w)
      (Engine.result_of run f.Standard_flows.f5_extracted)
  and r2 =
    History.derivation_of (Workspace.history w)
      (Engine.result_of run f.Standard_flows.f5_statistics)
  in
  Printf.printf "co-produced outputs share a record: %b\n\n"
    (match (r1, r2) with
    | Some a, Some b -> a.History.rid = b.History.rid
    | Some _, None | None, Some _ | None, None -> false);

  (* ---------------- Fig. 6: parallel execution --------------------- *)
  print_endline "# Fig. 6: disjoint branches execute in parallel";
  let f6 = Standard_flows.fig6 () in
  let g6 = f6.Standard_flows.f6_graph in
  Printf.printf "branches under the verification root: %d disjoint groups\n"
    (List.length
       (List.filter
          (fun (_, s) -> Task_graph.Int_set.cardinal s > 1)
          (Task_graph.disjoint_branches g6 f6.Standard_flows.f6_verification)));

  (* a second layout so the two branches extract different designs *)
  let layout_b = Eda.Layout.place ~name_suffix:"_layout_b" (Eda.Circuits.c17 ()) in
  let layout_b_iid = Workspace.install_layout w ~label:"second layout" layout_b in
  let layout_leaves = Workspace.find_nodes g6 E.layout in
  let bindings =
    Workspace.bind_catalog_tools w g6
      ~already:
        (match layout_leaves with
        | [ a; b ] -> [ (a, layout_iid); (b, layout_b_iid) ]
        | _ -> assert false)
  in
  let run6 = Engine.execute ~memo:false ctx g6 ~bindings in
  List.iter
    (fun machines ->
      let s = Parallel.schedule g6 ~costs:run6.Engine.costs ~machines in
      Format.printf "%a@." Parallel.pp_schedule s)
    [ 1; 2; 4 ];

  (* real multicore execution with domains *)
  let t0 = Unix.gettimeofday () in
  let _, executed = Parallel.execute_parallel ~domains:2 ctx g6 ~bindings in
  let t1 = Unix.gettimeofday () in
  Printf.printf "domains run: %d invocations in %.2f ms wall-clock\n" executed
    ((t1 -. t0) *. 1000.0)
