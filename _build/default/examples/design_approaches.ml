(* The four design approaches of section 3.4 -- goal-based, tool-based,
   data-based and plan-based -- all reaching the same flow through the
   same interface, plus the Fig. 9 instance browser with its user,
   date and keyword filters. *)

open Ddf
module E = Standard_schemas.E

(* Build the standard extraction flow starting from [start]: extracted
   netlist with its extractor and layout. *)
let build_extraction_flow session start_entity start_node =
  if start_entity = E.extracted_netlist then
    (* goal-based: expand downward *)
    let _ = Session.expand session start_node in
    ()
  else if start_entity = E.extractor then begin
    (* tool-based: the goal options come from the schema *)
    let goals = Session.goal_options session start_node in
    assert (List.mem E.extracted_netlist goals);
    let cnid, _ =
      Session.expand_up session start_node ~consumer:E.extracted_netlist
        ~role:"tool"
    in
    ignore cnid
  end
  else if Schema.is_subtype Standard_schemas.odyssey ~sub:start_entity ~super:E.layout
  then begin
    (* data-based: expand upward from the selected datum *)
    let cnid, _ =
      Session.expand_up session start_node ~consumer:E.extracted_netlist
        ~role:E.layout
    in
    ignore cnid
  end

(* The goal- and tool-based flows leave the layout leaf abstract; a
   data-based start types it by the selected instance.  Specializing
   the leaf (Fig. 4's operation) aligns all of them. *)
let normalize session =
  let flow = Session.current_flow session in
  List.iter
    (fun (n : Task_graph.node) ->
      if n.Task_graph.entity = E.layout then
        Session.specialize session n.Task_graph.nid E.edited_layout)
    (Task_graph.nodes flow)

let () =
  let w = Workspace.create ~user:"jacome" () in
  let session = Workspace.session w in

  (* some data, from several users over time (for the browser) *)
  let ctx = Workspace.ctx w in
  let installs =
    [ ("jbb", "Low pass filter", [ "filter"; "analog" ]);
      ("director", "CMOS Full adder", [ "adder"; "cmos" ]);
      ("sutton", "Operational Amplifier", [ "opamp"; "analog" ]) ]
  in
  List.iter
    (fun (user, label, keywords) ->
      ignore
        (Engine.install ctx ~entity:E.edited_netlist ~label ~keywords ~user
           (Value.Netlist (Eda.Circuits.full_adder ()))))
    installs;
  let layout_iid =
    Workspace.install_layout w ~label:"fa layout"
      (Eda.Layout.place (Eda.Circuits.full_adder ()))
  in

  (* ---- four approaches, one flow ------------------------------------ *)
  print_endline "# four approaches produce the same flow";
  (* 1. goal-based *)
  let n = Session.start_goal_based session E.extracted_netlist in
  build_extraction_flow session E.extracted_netlist n;
  normalize session;
  let goal_flow = Session.current_flow session in
  (* 2. tool-based *)
  let n = Session.start_tool_based session E.extractor in
  build_extraction_flow session E.extractor n;
  normalize session;
  let tool_flow = Session.current_flow session in
  (* 3. data-based *)
  let n = Session.start_data_based session layout_iid in
  build_extraction_flow session E.layout n;
  let data_flow = Session.current_flow session in
  (* save it to the flow catalog, then 4. plan-based *)
  Session.save_flow session "extract-netlist";
  let _roots = Session.start_plan_based session "extract-netlist" in
  let plan_flow = Session.current_flow session in

  Printf.printf "goal == tool: %b\n" (Canonical.equal goal_flow tool_flow);
  Printf.printf "goal == data: %b\n" (Canonical.equal goal_flow data_flow);
  Printf.printf "goal == plan: %b\n" (Canonical.equal goal_flow plan_flow);
  print_newline ();
  print_string (Task_graph.to_ascii goal_flow);

  (* the flow in its three representations (Fig. 3) *)
  print_endline "\n# the same flow in the paper's representations";
  (match Task_graph.roots goal_flow with
  | [ root ] ->
    Printf.printf "paper form:   %s\n" (Sexp_form.to_paper_string goal_flow root);
    Printf.printf "round-trip:   %s\n" (Sexp_form.to_string goal_flow);
    let bip = Bipartite.of_graph goal_flow in
    print_string (Bipartite.to_ascii bip)
  | _ -> assert false);

  (* ---- the Fig. 9 browser ------------------------------------------- *)
  print_endline "\n# the instance browser with filters (Fig. 9)";
  let show title filter =
    Printf.printf "%s:\n" title;
    List.iter
      (fun iid ->
        let m = Store.meta_of (Workspace.store w) iid in
        Printf.printf "  #%-3d %-24s %-10s @%d [%s]\n" iid m.Store.label
          m.Store.user m.Store.created_at
          (String.concat "," m.Store.keywords))
      (Store.browse (Workspace.store w) filter)
  in
  show "all netlists"
    { Store.any_filter with Store.f_entities = Some [ E.edited_netlist ] };
  show "user limits: sutton"
    { Store.any_filter with Store.f_user = Some "sutton" };
  show "keyword: analog" { Store.any_filter with Store.f_keywords = [ "analog" ] };
  show "text search: adder"
    { Store.any_filter with Store.f_text = Some "adder" }
