(* Design decomposition above the task level (section 3.1): a chip
   assembled from cells, with a Minerva-style design process tracking
   each cell's progress through the same derivation history Hercules
   writes.

   The chip is a 4-bit adder of full-adder cell instances.  Each cell
   must reach a verified physical view; the process report derives
   per-cell status from the history, a careless edit turns a cell
   STALE, and consistency maintenance repairs it. *)

open Ddf
module E = Standard_schemas.E

let derive_and_verify w ctx cell_name logic_iid =
  let views =
    Views.derive_views ctx ~logic:logic_iid
      ~placer_tool:(Workspace.tool w E.placer)
      ~expander_tool:(Workspace.tool w E.transistor_expander)
  in
  let _, verdict =
    Views.verify_physical ctx ~logic:logic_iid ~physical:views.Views.cv_physical
      ~extractor_tool:(Workspace.tool w E.extractor)
      ~verifier_tool:(Workspace.tool w E.verifier)
  in
  Printf.printf "  %-12s physical view derived, LVS %s\n" cell_name
    (if verdict.Eda.Lvs.equivalent then "clean" else "DIRTY")

let () =
  let w = Workspace.create ~user:"jacome" () in
  let ctx = Workspace.ctx w in

  (* ---- the hierarchical design ------------------------------------- *)
  print_endline "# a chip assembled from cells";
  let chip = Eda.Hier.adder_of_cells 4 in
  Format.printf "%a@." Eda.Hier.pp chip;
  let flat = Eda.Hier.flatten chip in
  Printf.printf "flattened: %d gates, depth %d\n" (Eda.Netlist.gate_count flat)
    (Eda.Netlist.depth flat);
  (* the flat chip computes the same function as the monolithic adder *)
  let reference = Eda.Circuits.ripple_adder 4 in
  let truth nl =
    let inputs = nl.Eda.Netlist.primary_inputs in
    Eda.Sim_compiled.run (Eda.Sim_compiled.compile nl)
      (Eda.Stimuli.exhaustive inputs)
    |> List.map (List.map snd)
  in
  Printf.printf "flat chip == monolithic adder4: %b\n\n"
    (truth flat = truth reference);

  (* ---- the design process ------------------------------------------ *)
  print_endline "# the Minerva-style design process";
  let needs_physical = [ Process.require E.synthesized_layout ] in
  let process =
    Process.create ~process_name:"adder4_tapeout"
      (Process.cell "chip"
         ~requirements:[ Process.require E.extracted_netlist ]
         ~assigned_to:"jacome"
         ~children:
           [
             Process.cell "full_adder" ~requirements:needs_physical
               ~assigned_to:"sutton";
             Process.cell "output_buffer" ~requirements:needs_physical;
           ])
  in

  (* install cell data under the cell keywords *)
  let install_cell name nl =
    Engine.install ctx ~entity:E.edited_netlist ~label:name
      ~keywords:[ Process.cell_keyword name ]
      (Value.Netlist nl)
  in
  let fa_iid = install_cell "full_adder" (Eda.Circuits.full_adder ()) in
  let chip_iid = install_cell "chip" flat in

  Format.printf "before any work:@.%a@." Process.pp_report
    (Process.report ctx process);
  Printf.printf "completion: %.0f%%\n" (100.0 *. Process.completion ctx process);
  Printf.printf "sutton's worklist: %s\n\n"
    (String.concat ", " (Process.worklist ctx process ~designer:"sutton"));

  (* ---- work happens -------------------------------------------------- *)
  print_endline "# designers run their flows";
  derive_and_verify w ctx "full_adder" fa_iid;
  (* the chip level needs an extraction of its (placed) flat netlist *)
  let g, lay = Task_graph.create (Workspace.schema w) E.synthesized_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g lay in
  let placer, nln = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run =
    Engine.execute ctx g
      ~bindings:[ (placer, Workspace.tool w E.placer); (nln, chip_iid) ]
  in
  let chip_layout = Engine.result_of run lay in
  let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
  let g, fresh = Task_graph.expand g ext in
  let extractor, layn = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let _ =
    Engine.execute ctx g
      ~bindings:
        [ (extractor, Workspace.tool w E.extractor); (layn, chip_layout) ]
  in
  Printf.printf "  %-12s placed (%d cells) and extracted\n\n" "chip"
    (Eda.Layout.cell_count (Workspace.layout_of w chip_layout));

  Format.printf "after the work:@.%a@." Process.pp_report
    (Process.report ctx process);
  Printf.printf "completion: %.0f%%\n\n" (100.0 *. Process.completion ctx process);

  (* ---- an edit makes a cell stale ----------------------------------- *)
  print_endline "# the full adder is edited: its physical view goes stale";
  let session =
    Workspace.install_editor_session w
      (Eda.Edit_script.create
         [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "eco" } ])
  in
  let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
  let g, fresh = Task_graph.expand g out in
  let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run = Engine.execute ctx g ~bindings:[ (editor, session); (src, fa_iid) ] in
  (* the new version belongs to the same cell *)
  Store.annotate (Workspace.store w) (Engine.result_of run out)
    ~keywords:[ Process.cell_keyword "full_adder" ] ();
  Format.printf "%a@." Process.pp_report (Process.report ctx process);

  (* consistency maintenance repairs the stale view *)
  (match
     List.find_map
       (fun r ->
         List.find_map
           (fun (_, s) ->
             match s with Process.Stale iid -> Some iid | _ -> None)
           r.Process.cr_statuses)
       (Process.report ctx process)
   with
  | Some stale ->
    let rep = Consistency.refresh ctx stale in
    Format.printf "refresh: %a@." Consistency.pp_report rep;
    (* tag the fresh layout with the cell, as a designer would *)
    Store.annotate (Workspace.store w) rep.Consistency.fresh_instance
      ~keywords:[ Process.cell_keyword "full_adder" ] ()
  | None -> print_endline "nothing stale?");
  Format.printf "after refresh:@.%a@." Process.pp_report
    (Process.report ctx process)
