examples/methodology_evolution.ml: Baselines Ddf Eda Encapsulation Engine List Printf Schema Standard_flows Standard_schemas Standard_tools Store String Task_graph Value
