examples/full_adder_flow.mli:
