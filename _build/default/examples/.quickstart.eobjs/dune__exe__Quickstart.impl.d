examples/quickstart.ml: Ddf Eda Format List Printf Session Standard_schemas String Task_graph Value Workspace
