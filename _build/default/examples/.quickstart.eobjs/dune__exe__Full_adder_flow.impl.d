examples/full_adder_flow.ml: Ddf Eda Engine Format History List Parallel Printf Standard_flows Standard_schemas Task_graph Unix Value Workspace
