examples/custom_schema.mli:
