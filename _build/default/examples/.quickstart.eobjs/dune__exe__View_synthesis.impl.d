examples/view_synthesis.ml: Consistency Ddf Eda Engine Format List Printf Standard_schemas Task_graph Value Views Workspace
