examples/compiled_simulator.ml: Ddf Eda Engine Fmt Format History List Printf Standard_flows Standard_schemas String Sys Task_graph Unix Value Workspace
