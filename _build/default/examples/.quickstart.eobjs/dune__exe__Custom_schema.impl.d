examples/custom_schema.ml: Consistency Ddf Encapsulation Engine Format History List Option Printf Schema Session Store String Task_graph Value
