examples/chip_assembly.ml: Consistency Ddf Eda Engine Format List Printf Process Standard_schemas Store String Task_graph Value Views Workspace
