examples/view_synthesis.mli:
