examples/quickstart.mli:
