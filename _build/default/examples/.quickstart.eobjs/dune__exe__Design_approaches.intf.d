examples/design_approaches.mli:
