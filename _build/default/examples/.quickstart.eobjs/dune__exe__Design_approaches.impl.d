examples/design_approaches.ml: Bipartite Canonical Ddf Eda Engine List Printf Schema Session Sexp_form Standard_schemas Store String Task_graph Value Workspace
