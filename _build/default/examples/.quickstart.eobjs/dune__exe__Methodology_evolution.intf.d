examples/methodology_evolution.mli:
