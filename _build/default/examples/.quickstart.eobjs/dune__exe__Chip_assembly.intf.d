examples/chip_assembly.mli:
