examples/pla_reimplementation.mli:
