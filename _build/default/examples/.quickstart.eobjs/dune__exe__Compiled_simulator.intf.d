examples/compiled_simulator.mli:
