examples/pla_reimplementation.ml: Ddf Eda Format History List Printf Session Standard_schemas String Task_graph Workspace
