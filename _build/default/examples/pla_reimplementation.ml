(* The standard-cell-to-PLA re-implementation scenario the paper
   borrows from Chiueh & Katz (section 2): a designer implements a
   logic circuit with standard cells, then repositions to the netlist
   and creates a new branch that re-implements the same circuit as a
   PLA.  In Hercules terms: a data-based start from the netlist
   instance, a new goal, and the design history then shows both
   implementation branches hanging off the same netlist. *)

open Ddf
module E = Standard_schemas.E

let () =
  let w = Workspace.create ~user:"chiueh" () in
  let ctx = Workspace.ctx w in
  let session = Workspace.session w in

  let spec = Eda.Circuits.mux4 () in
  let netlist_iid =
    Workspace.install_netlist w ~label:"mux4 logic" ~keywords:[ "mux" ] spec
  in

  (* ---- branch 1: standard cells ------------------------------------ *)
  print_endline "# branch 1: standard-cell implementation";
  let std_node = Session.start_data_based session netlist_iid in
  let layout_node, _fresh =
    Session.expand_up ~include_optional:false session std_node
      ~consumer:E.synthesized_layout
  in
  let flow = Session.current_flow session in
  (match Workspace.find_nodes flow E.placer with
  | [ placer ] -> Session.select session placer [ Workspace.tool w E.placer ]
  | _ -> assert false);
  let std_layout_iid = List.hd (Session.run session layout_node) in
  let std_layout = Workspace.layout_of w std_layout_iid in
  Format.printf "standard cells: %a@." Eda.Layout.pp std_layout;

  (* ---- branch 2: reposition to the netlist, create a PLA ----------- *)
  print_endline "\n# branch 2: data-based restart, PLA re-implementation";
  let pla_start = Session.start_data_based session netlist_iid in
  let pla_node, _ =
    Session.expand_up session pla_start ~consumer:E.pla_layout
  in
  let flow = Session.current_flow session in
  (match Workspace.find_nodes flow E.pla_generator with
  | [ gen ] -> Session.select session gen [ Workspace.tool w E.pla_generator ]
  | _ -> assert false);
  let pla_layout_iid = List.hd (Session.run session pla_node) in
  let pla_layout = Workspace.layout_of w pla_layout_iid in
  Format.printf "PLA:            %a@." Eda.Layout.pp pla_layout;

  (* area and depth comparison between the two implementations *)
  let extract l =
    let nl, _ = Eda.Extract.run l in
    nl
  in
  let std_nl = extract std_layout and pla_nl = extract pla_layout in
  Printf.printf
    "\nstd-cell: area %d, depth %d | PLA: area %d, depth %d\n"
    (Eda.Layout.area std_layout)
    (Eda.Netlist.depth std_nl)
    (Eda.Layout.area pla_layout)
    (Eda.Netlist.depth pla_nl);

  (* the PLA branch must implement the same function: compare truth
     tables through compiled simulation *)
  let tt nl =
    let c = Eda.Sim_compiled.compile nl in
    Eda.Sim_compiled.run c (Eda.Stimuli.exhaustive spec.Eda.Netlist.primary_inputs)
    |> List.map (List.map snd)
  in
  Printf.printf "functionally equivalent implementations: %b\n"
    (tt spec = tt std_nl && tt spec = tt pla_nl);

  (* ---- the history shows both branches off the netlist ------------- *)
  print_endline "\n# forward chaining from the shared netlist";
  let records = History.forward_closure (Workspace.history w) netlist_iid in
  List.iter
    (fun (r : History.record) ->
      Printf.printf "  r%d: %s -> %s\n" r.History.rid r.History.task_entity
        (String.concat ", "
           (List.map
              (fun (e, i) -> Printf.sprintf "#%d:%s" i e)
              r.History.outputs)))
    records;
  Printf.printf "branches rooted at the netlist: %d\n" (List.length records);

  (* a template query (section 4.2): "find the layouts synthesized from
     this netlist" *)
  let g, root = Task_graph.create (Workspace.schema w) E.layout in
  let matches =
    History.query_template (Workspace.history w) (Workspace.store w) g ~bound:[]
  in
  ignore root;
  Printf.printf "layout instances known to the history: %d\n"
    (List.length matches);
  ignore ctx
