(* Methodology maintenance (section 3.3): "they also make methodology
   maintenance easier by avoiding the requirement for the maintenance
   of a set of flows (only the task schema need be maintained), and by
   simplifying the incorporation of new tools."

   This scenario evolves a methodology mid-project three ways:

   1. a new tool VARIANT (fast_extractor <: extractor) serves existing
      flows with zero flow edits -- subtyping resolves the
      encapsulation;
   2. a brand-new TASK (a lint check) is added as one schema entity and
      one encapsulation, and is immediately expandable from any netlist
      node;
   3. the frozen-flow baseline is shown needing every stored flow
      rewritten for the same change. *)

open Ddf
module E = Standard_schemas.E

let () =
  print_endline "# evolving the methodology mid-project";

  (* the project starts on the stock schema *)
  let schema0 = Standard_schemas.odyssey in

  (* --- 1. a new tool variant --------------------------------------- *)
  let schema1 =
    Schema.add_entity schema0 (Schema.tool ~parent:E.extractor "fast_extractor" [])
  in
  Printf.printf
    "added fast_extractor <: extractor: %d -> %d entities, flows untouched\n"
    (Schema.size schema0) (Schema.size schema1);

  (* --- 2. a brand-new task ------------------------------------------ *)
  let schema2 =
    Schema.add_entity schema1 (Schema.tool "lint_checker" [])
  in
  let schema2 =
    Schema.add_entity schema2
      (Schema.entity "lint_report"
         ~description:"style and structure diagnostics for a netlist"
         [ Schema.functional "lint_checker"; Schema.data E.netlist ])
  in
  Printf.printf "added the lint task: netlist now has %d consumers (was %d)\n"
    (List.length (Schema.consumers schema2 E.netlist))
    (List.length (Schema.consumers schema0 E.netlist));

  (* its encapsulation: a real little lint pass over the substrate *)
  let registry = Standard_tools.registry () in
  let lint_enc =
    {
      Encapsulation.key = "lint.basic";
      tool_entity = "lint_checker";
      goals = [ "lint_report" ];
      behavior =
        (fun ~tool:_ ~goals:_ args ->
          let nl = Value.as_netlist (Encapsulation.required args E.netlist) in
          let fanout = Eda.Netlist.fanout_table nl in
          let diags = ref [] in
          let warn fmt = Printf.ksprintf (fun s -> diags := s :: !diags) fmt in
          List.iter
            (fun (g : Eda.Netlist.gate) ->
              if fanout g.Eda.Netlist.output > 4 then
                warn "high fanout (%d) on %s" (fanout g.Eda.Netlist.output)
                  g.Eda.Netlist.output;
              if List.length g.Eda.Netlist.inputs > 3 then
                warn "wide %s gate %s"
                  (Eda.Logic.op_name g.Eda.Netlist.op)
                  g.Eda.Netlist.gname)
            nl.Eda.Netlist.gates;
          List.iter
            (fun o ->
              if fanout o > 1 then ()
              else if not (List.mem o (Eda.Netlist.nets nl)) then
                warn "floating output %s" o)
            nl.Eda.Netlist.primary_outputs;
          let text =
            if !diags = [] then "clean"
            else String.concat "\n" (List.rev !diags)
          in
          [ ("lint_report", Value.Blob { blob_kind = "lint"; text }) ]);
      cost_us = (fun _ -> 30);
      batched = false;
    }
  in
  Encapsulation.register registry lint_enc;

  (* --- run both new capabilities over one workspace ------------------ *)
  let ctx = Engine.create_context ~user:"maintainer" ~registry schema2 in
  let nl = Eda.Circuits.mux4 () in
  let nl_iid =
    Engine.install ctx ~entity:E.edited_netlist ~label:"mux4" (Value.Netlist nl)
  in
  let layout_iid =
    Engine.install ctx ~entity:E.edited_layout
      (Value.Layout (Eda.Layout.place nl))
  in
  let fast =
    Engine.install ctx ~entity:"fast_extractor" ~label:"fast extractor"
      (Value.Tool (Value.Builtin "extractor:fast"))
  in
  let linter =
    Engine.install ctx ~entity:"lint_checker" ~label:"lint"
      (Value.Tool (Value.Builtin "lint:basic"))
  in

  (* the OLD extraction flow, served by the NEW tool variant *)
  let g, ext = Task_graph.create schema2 E.extracted_netlist in
  let g, fresh = Task_graph.expand g ext in
  let tool_node, lay_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let g = Task_graph.specialize g tool_node "fast_extractor" in
  let run =
    Engine.execute ctx g ~bindings:[ (tool_node, fast); (lay_node, layout_iid) ]
  in
  Printf.printf "old extraction flow ran with the new tool variant: %d task\n"
    run.Engine.stats.Engine.executed;

  (* the NEW task, built by normal expansion *)
  let g, report = Task_graph.create schema2 "lint_report" in
  let g, fresh = Task_graph.expand g report in
  let lint_node, nl_node =
    match fresh with [ a; b ] -> (a, b) | _ -> assert false
  in
  let run =
    Engine.execute ctx g ~bindings:[ (lint_node, linter); (nl_node, nl_iid) ]
  in
  let _, text =
    Value.as_blob (Store.payload ctx.Engine.store (Engine.result_of run report))
  in
  Printf.printf "lint report for mux4:\n%s\n"
    (String.concat "\n"
       (List.map (fun l -> "  " ^ l) (String.split_on_char '\n' text)));

  (* --- 3. what the static baseline pays ----------------------------- *)
  print_endline "\n# the frozen-flow baseline, for contrast";
  let catalog =
    [
      Baselines.Static_flow.of_task_graph ~name:"extract"
        (Standard_flows.fig5 ()).Standard_flows.f5_graph;
      Baselines.Static_flow.of_task_graph ~name:"verify"
        (Standard_flows.fig8b ()).Standard_flows.f8b_graph;
      Baselines.Static_flow.of_task_graph ~name:"resynth"
        (Standard_flows.fig4b ()).Standard_flows.f3_graph;
    ]
  in
  Printf.printf
    "replacing the extractor: dynamic = 0 flow edits; static = %d of %d \
     stored flows rewritten\n"
    (Baselines.Static_flow.maintenance_burden catalog ~tool:E.extractor)
    (List.length catalog)
