(* The framework is methodology-independent: nothing in the schema,
   graph, store, history or engine knows about EDA.  This example
   defines a completely different methodology -- preparing a conference
   paper -- as a task schema with its own tools, runs dynamically
   defined flows over it, and gets history, versioning and consistency
   maintenance for free.

   Schema (a faithful miniature of Fig. 1's structure, different
   domain):

     draft        <- (editor, draft?)            -- the edit loop
     figures      <- (figure_generator, results)
     camera_ready <- (formatter, draft, figures)
     review       <- (reviewer, camera_ready)
*)

open Ddf

(* ---- the methodology ---------------------------------------------- *)

let schema =
  Schema.create "paper_prep"
    [
      Schema.tool "editor" [];
      Schema.tool "figure_generator" [];
      Schema.tool "formatter" [];
      Schema.tool "reviewer" [];
      Schema.entity "results" [];
      Schema.entity "draft"
        [ Schema.functional "editor"; Schema.data ~optional:true "draft" ];
      Schema.entity "figures"
        [ Schema.functional "figure_generator"; Schema.data "results" ];
      Schema.entity "camera_ready"
        [ Schema.functional "formatter"; Schema.data "draft";
          Schema.data "figures" ];
      Schema.entity "review"
        [ Schema.functional "reviewer"; Schema.data "camera_ready" ];
    ]

(* ---- the tools (plain text transforms over Blob payloads) ---------- *)

let blob kind text = Value.Blob { blob_kind = kind; text }

let text_tool key tool_entity goal f =
  {
    Encapsulation.key;
    tool_entity;
    goals = [ goal ];
    behavior =
      (fun ~tool ~goals:_ args ->
        let text role =
          snd (Value.as_blob (Encapsulation.required args role))
        in
        let text_opt role =
          Option.map (fun v -> snd (Value.as_blob v)) (Encapsulation.arg args role)
        in
        [ (goal, f ~tool ~text ~text_opt) ]);
    cost_us = (fun _ -> 50);
    batched = false;
  }

let registry () =
  let r = Encapsulation.create_registry () in
  List.iter (Encapsulation.register r)
    [
      text_tool "editor.append" "editor" "draft"
        (fun ~tool ~text:_ ~text_opt ->
          let session = match Value.as_tool tool with
            | Value.Builtin s -> s
            | _ -> Encapsulation.tool_errorf "expected a builtin editor"
          in
          let base = Option.value (text_opt "draft") ~default:"" in
          blob "draft" (base ^ session ^ "\n"));
      text_tool "figures.render" "figure_generator" "figures"
        (fun ~tool:_ ~text ~text_opt:_ ->
          blob "figures"
            (String.concat "\n"
               (List.map
                  (fun line -> "[figure] " ^ line)
                  (String.split_on_char '\n' (text "results")))));
      text_tool "formatter.join" "formatter" "camera_ready"
        (fun ~tool:_ ~text ~text_opt:_ ->
          blob "camera_ready"
            ("== CAMERA READY ==\n" ^ text "draft" ^ text "figures"));
      text_tool "reviewer.grumpy" "reviewer" "review"
        (fun ~tool:_ ~text ~text_opt:_ ->
          let n = String.length (text "camera_ready") in
          blob "review"
            (if n > 90 then "accept (thorough!)" else "reject: too short"));
    ];
  r

(* ---- a session over the custom methodology ------------------------- *)

let () =
  print_endline "# a non-EDA methodology over the same framework";
  let ctx = Engine.create_context ~user:"author" ~registry:(registry ()) schema in
  let session = Session.of_context ctx in

  (* catalog data and tools *)
  let results =
    Engine.install ctx ~entity:"results" ~label:"experiment results"
      (blob "results" "speedup 8x\ncrossover at 4 vectors")
  in
  let editor i =
    Engine.install ctx ~entity:"editor"
      ~label:(Printf.sprintf "editing session %d" i)
      (Value.Tool (Value.Builtin (Printf.sprintf "paragraph %d." i)))
  in
  let tool entity key =
    Engine.install ctx ~entity ~label:entity (Value.Tool (Value.Builtin key))
  in
  let figure_generator = tool "figure_generator" "fig"
  and formatter = tool "formatter" "fmt"
  and reviewer = tool "reviewer" "rev" in

  (* goal-based: build the whole flow from the review downward *)
  let review_node = Session.start_goal_based session "review" in
  ignore (Session.expand session review_node);
  let flow = Session.current_flow session in
  let node entity =
    List.find
      (fun (n : Task_graph.node) -> n.Task_graph.entity = entity)
      (Task_graph.nodes flow)
  in
  ignore (Session.expand session (node "camera_ready").Task_graph.nid);
  let flow = Session.current_flow session in
  let node entity =
    List.find
      (fun (n : Task_graph.node) -> n.Task_graph.entity = entity)
      (Task_graph.nodes flow)
  in
  ignore (Session.expand session (node "figures").Task_graph.nid);
  ignore
    (Session.expand ~include_optional:false session (node "draft").Task_graph.nid);
  print_string (Session.render_task_window session);

  (* select and run *)
  let flow = Session.current_flow session in
  let select entity iid =
    List.iter
      (fun (n : Task_graph.node) ->
        if n.Task_graph.entity = entity && Task_graph.out_edges flow n.Task_graph.nid = []
        then Session.select session n.Task_graph.nid [ iid ])
      (Task_graph.nodes flow)
  in
  select "results" results;
  select "editor" (editor 1);
  select "figure_generator" figure_generator;
  select "formatter" formatter;
  select "reviewer" reviewer;
  let review_iid = List.hd (Session.run session review_node) in
  let _, verdict = Value.as_blob (Store.payload ctx.Engine.store review_iid) in
  Printf.printf "\nreview verdict: %s\n" verdict;

  (* versioning and consistency, inherited for free *)
  print_endline "\n# the edit loop gives versioning for free";
  let camera_iid =
    match History.derivation_of ctx.Engine.history review_iid with
    | Some r -> List.assoc "camera_ready" r.History.inputs
    | None -> assert false
  in
  let draft_iid =
    match History.derivation_of ctx.Engine.history camera_iid with
    | Some r -> List.assoc "draft" r.History.inputs
    | None -> assert false
  in
  (* revise the draft: a new version *)
  let g, out = Task_graph.create schema "draft" in
  let g, fresh = Task_graph.expand g out in
  let editor_node =
    List.find (fun n -> Task_graph.entity_of g n = "editor") fresh
  in
  let draft_node =
    List.find (fun n -> Task_graph.entity_of g n = "draft" && n <> out) fresh
  in
  let _ =
    Engine.execute ctx g
      ~bindings:[ (editor_node, editor 2); (draft_node, draft_iid) ]
  in
  Printf.printf "draft versions: %d\n"
    (List.length
       (History.versions ctx.Engine.history ctx.Engine.store schema draft_iid));
  (* the camera-ready copy is now out of date *)
  let stale =
    History.out_of_date ctx.Engine.history ctx.Engine.store schema camera_iid
  in
  Printf.printf "camera-ready stale inputs: %d\n" (List.length stale);
  let report = Consistency.refresh ctx review_iid in
  Format.printf "refresh the review: %a@." Consistency.pp_report report;
  let _, verdict2 =
    Value.as_blob (Store.payload ctx.Engine.store report.Consistency.fresh_instance)
  in
  Printf.printf "new verdict: %s\n" verdict2
