(* The write-ahead journal: durable replay, torn-tail crash recovery,
   snapshot compaction. *)

open Ddf
module E = Standard_schemas.E

let dir_counter = ref 0

(* A fresh scratch database directory per test. *)
let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddf-journal-%d-%d" (Unix.getpid ()) !dir_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* The whole durable surface in one comparable string: instances with
   meta-data and payloads, history records, the clock.  The session
   [user] header is per-connection identity, not durable state (a
   server rebinds it on every mutation), so it is normalized out. *)
let state ctx =
  Persist.save (Session.of_context ctx)
  |> String.split_on_char '\n'
  |> List.map (fun line ->
         if String.length line >= 7 && String.sub line 0 7 = " (user " then
           " (user _)"
         else line)
  |> String.concat "\n"

(* Drive a journaled context through the kind of work a session does:
   tool installs (via the workspace wrapper), netlist installs, edit
   tasks through the engine, annotations. Returns the version chain. *)
let activity ?(seed = 7) ctx n =
  let w = Workspace.of_session (Session.of_context ctx) in
  let v0 =
    Workspace.install_netlist w
      (Eda.Circuits.random ~n_inputs:3 ~n_gates:6 (Eda.Rng.create seed))
  in
  let versions = ref [ v0 ] in
  for i = 1 to n do
    let base = List.hd !versions in
    let es =
      Workspace.install_editor_session w
        (Eda.Edit_script.create
           ~name:(Printf.sprintf "e%d" i)
           [ Eda.Edit_script.Rename (Printf.sprintf "v%d" i) ])
    in
    let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
    let g, fresh = Task_graph.expand g out in
    let editor, src =
      match fresh with [ a; b ] -> (a, b) | _ -> assert false
    in
    let run =
      Engine.execute (Workspace.ctx w) g
        ~bindings:[ (editor, es); (src, base) ]
    in
    versions := Engine.result_of run out :: !versions
  done;
  !versions

let reopened_equals dir reference =
  let j = Journal.open_ ~dir Standard_schemas.odyssey in
  let s = state (Journal.context j) in
  Journal.close j;
  Alcotest.(check string) "replayed state" reference s

let basics =
  [
    Alcotest.test_case "replay reconstructs the context" `Quick (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 5);
        Store.annotate ctx.Engine.store 1 ~label:"renamed" ~comment:"note"
          ~keywords:[ "k1"; "k2" ] ();
        let before = state ctx in
        Journal.close j;
        reopened_equals dir before);
    Alcotest.test_case "replay restores ticks and clock" `Quick (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 3);
        let st = Store.tick ctx.Engine.store
        and ht = History.tick ctx.Engine.history
        and clock = ctx.Engine.clock in
        Journal.close j;
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        Alcotest.(check int) "store tick" st (Store.tick ctx.Engine.store);
        Alcotest.(check int) "history tick" ht (History.tick ctx.Engine.history);
        Alcotest.(check int) "clock" clock ctx.Engine.clock;
        (* and new ids continue densely after the replay *)
        let iid =
          Engine.install ctx ~entity:E.stimuli ~label:"more"
            (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))
        in
        Alcotest.(check int) "next iid" st iid;
        Journal.close j);
    Alcotest.test_case "abandoned journal (crash) still replays" `Quick
      (fun () ->
        with_dir @@ fun dir ->
        (* no [close], no fsync: mimic a killed process.  Appends are
           flushed per entry, so everything written must replay. *)
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 4);
        let before = state ctx in
        reopened_equals dir before);
  ]

let torn_tail =
  [
    Alcotest.test_case "torn tail is truncated, prefix survives" `Quick
      (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 3);
        let before = state ctx in
        Journal.close j;
        (* half an entry at the end: a frame header promising more
           bytes than exist *)
        let wal = Filename.concat dir "wal.ddf" in
        let oc = open_out_gen [ Open_append ] 0o644 wal in
        output_string oc "J1 5000 0123456789abcdef0123456789abcdef\n(put";
        close_out oc;
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        Alcotest.(check bool) "tail dropped" true (Journal.truncated_on_open j > 0);
        Alcotest.(check string) "prefix state" before (state (Journal.context j));
        (* the journal stays writable after recovery *)
        ignore
          (Engine.install (Journal.context j) ~entity:E.stimuli ~label:"after"
             (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])));
        let after = state (Journal.context j) in
        Journal.close j;
        reopened_equals dir after);
    Alcotest.test_case "corrupted checksum in the tail is dropped" `Quick
      (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore
          (Engine.install ctx ~entity:E.stimuli ~label:"one"
             (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])));
        let before = state ctx in
        let wal = Filename.concat dir "wal.ddf" in
        let size = (Unix.stat wal).Unix.st_size in
        ignore
          (Engine.install ctx ~entity:E.stimuli ~label:"two"
             (Value.Stimuli (Eda.Stimuli.exhaustive [ "b" ])));
        Journal.close j;
        (* flip one payload byte of the last entry *)
        let fd = Unix.openfile wal [ Unix.O_WRONLY ] 0 in
        ignore (Unix.lseek fd (size + 40) Unix.SEEK_SET);
        ignore (Unix.write fd (Bytes.of_string "#") 0 1);
        Unix.close fd;
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        Alcotest.(check bool) "tail dropped" true (Journal.truncated_on_open j > 0);
        Alcotest.(check string) "prefix state" before (state (Journal.context j));
        Journal.close j);
  ]

let compaction =
  [
    Alcotest.test_case "compact folds the log into the snapshot" `Quick
      (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 4);
        let before = state ctx in
        Journal.compact j;
        Alcotest.(check int) "log emptied" 0 (Journal.entries_since_snapshot j);
        Alcotest.(check bool) "snapshot exists" true
          (Sys.file_exists (Filename.concat dir "snapshot.ddf"));
        (* post-compaction writes land in the fresh log *)
        ignore (activity ~seed:99 ctx 2);
        let after = state ctx in
        Alcotest.(check bool) "state advanced" true (before <> after);
        Journal.close j;
        reopened_equals dir after);
    Alcotest.test_case "maybe_compact honors the threshold" `Quick (fun () ->
        with_dir @@ fun dir ->
        let j =
          Journal.open_ ~compact_every:5 ~dir Standard_schemas.odyssey
        in
        let ctx = Journal.context j in
        ignore (activity ctx 6);
        (* activity wrote well over 5 entries *)
        Alcotest.(check bool) "over threshold" true
          (Journal.entries_since_snapshot j >= 5);
        Alcotest.(check bool) "compacted" true (Journal.maybe_compact j);
        Alcotest.(check int) "log emptied" 0 (Journal.entries_since_snapshot j);
        Alcotest.(check bool) "below threshold now" false
          (Journal.maybe_compact j);
        let final = state ctx in
        Journal.close j;
        reopened_equals dir final);
    Alcotest.test_case "torn snapshot write (.tmp) is ignored on open" `Quick
      (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        ignore (activity (Journal.context j) 3);
        Journal.compact j;
        let final = state (Journal.context j) in
        Journal.close j;
        (* a crash mid-compaction leaves a half-written temp file; the
           atomic rename never happened, so replay must not read it *)
        let oc =
          open_out (Filename.concat dir "snapshot.ddf.tmp")
        in
        output_string oc "(store (instances (garbage";
        close_out oc;
        reopened_equals dir final);
    Alcotest.test_case "entries_since at exactly base_seq is the cutover"
      `Quick (fun () ->
        (* the snapshot covers [1..base_seq]: a follower that has
           applied exactly base_seq entries needs Frames [], one entry
           fewer needs a snapshot resync *)
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (activity ctx 2);
        Journal.compact j;
        let base = Journal.base_seq j in
        Alcotest.(check bool) "snapshot base advanced" true (base > 0);
        (match Journal.entries_since j base with
        | Journal.Frames [] -> ()
        | Journal.Frames fs ->
          Alcotest.failf "expected no frames, got %d" (List.length fs)
        | Journal.Snapshot_needed ->
          Alcotest.fail "base_seq itself must not demand a snapshot");
        (match Journal.entries_since j (base - 1) with
        | Journal.Snapshot_needed -> ()
        | Journal.Frames _ ->
          Alcotest.fail "pre-base seqnos were compacted away");
        (* a post-compaction append is served from the fresh wal,
           numbered base+1 *)
        ignore
          (Engine.install ctx ~entity:E.stimuli ~label:"tail"
             (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])));
        (match Journal.entries_since j base with
        | Journal.Frames [ (s, _) ] ->
          Alcotest.(check int) "first wal frame is base+1" (base + 1) s
        | Journal.Frames fs ->
          Alcotest.failf "expected one frame, got %d" (List.length fs)
        | Journal.Snapshot_needed ->
          Alcotest.fail "base_seq itself must not demand a snapshot");
        (* the sync reader no longer hits a wall at the base: cemented
           frames are served by positioned reads, continuing into the
           wal without a seam *)
        (match Journal.frames j ~after:(base - 1) ~limit:10 with
        | (s0, _, _) :: _ as fs ->
          Alcotest.(check int) "cold read starts at base" base s0;
          Alcotest.(check int) "cold read continues into the wal" (base + 1)
            (match List.rev fs with (s, _, _) :: _ -> s | [] -> 0)
        | [] -> Alcotest.fail "cemented frames must be served");
        Journal.close j;
        (* with cement disabled, the old contract holds: a typed
           `Conflict marks the compacted-away boundary *)
        with_dir @@ fun dir2 ->
        let j2 =
          Journal.open_ ~cement:false ~dir:dir2 Standard_schemas.odyssey
        in
        ignore (activity (Journal.context j2) 2);
        Journal.compact j2;
        let base2 = Journal.base_seq j2 in
        (match Journal.frames j2 ~after:(base2 - 1) ~limit:10 with
        | _ -> Alcotest.fail "compacted frames must not be served"
        | exception Error.Ddf_error e ->
          Alcotest.(check bool) "typed `Conflict" true
            (e.Error.code = `Conflict));
        Journal.close j2);
  ]

let suite = [ ("journal", basics @ torn_tail @ compaction) ]
