(* Wire protocol v8: the length-prefixed binary codec.  A qcheck
   codec-equivalence oracle over generated requests and responses
   (binary and sexp must both round-trip every constructor to the same
   value), header-token round-trips over real sockets in both codecs,
   gathered batch writes, large-payload framing, per-frame codec
   sniffing, the version interop matrix (binary and sexp clients
   against one server, a mixed-codec replication pair, a sexp-feed
   sync round), and redial renegotiation after torn sends. *)

open Ddf
module E = Standard_schemas.E

let with_faults f = Fun.protect ~finally:Fault.reset f

(* ------------------------------------------------------------------ *)
(* Generators: every constructor of both wire types                    *)
(* ------------------------------------------------------------------ *)

let gen_text = QCheck2.Gen.(string_size ~gen:printable (int_range 0 24))

(* 64-bit extremes included: binary ints travel as 8-byte words. *)
let gen_int =
  QCheck2.Gen.(
    frequency
      [ (4, small_signed_int); (1, oneofl [ 0; 1; -1; max_int; min_int ]) ])

let gen_nat = QCheck2.Gen.(int_bound 1_000_000)

(* Finite floats only: both codecs are bit-exact (hex atoms on the
   sexp side), but NaN breaks the structural-equality oracle. *)
let gen_float =
  QCheck2.Gen.(
    map
      (fun (a, b) -> float_of_int a /. float_of_int (b + 1))
      (pair (int_range (-1_000_000) 1_000_000) (int_bound 1000)))

let gen_sexp =
  QCheck2.Gen.(
    sized @@ fix
    @@ fun self n ->
    if n <= 0 then map (fun s -> Sexp.Atom s) gen_text
    else
      frequency
        [ (2, map (fun s -> Sexp.Atom s) gen_text);
          (1, map (fun l -> Sexp.List l) (list_size (int_bound 4) (self (n / 2))))
        ])

let gen_filter =
  QCheck2.Gen.(
    map
      (fun ((ents, user), (from_, to_), (kws, text)) ->
        { Store.f_entities = ents; f_user = user; f_from = from_; f_to = to_;
          f_keywords = kws; f_text = text })
      (triple
         (pair (option (small_list gen_text)) (option gen_text))
         (pair (option gen_nat) (option gen_nat))
         (pair (small_list gen_text) (option gen_text))))

let gen_meta =
  QCheck2.Gen.(
    map
      (fun ((user, created_at), (label, comment), kws) ->
        { Store.user; created_at; label; comment; keywords = kws })
      (triple (pair gen_text gen_nat) (pair gen_text gen_text)
         (small_list gen_text)))

let gen_error =
  QCheck2.Gen.(
    map
      (fun (code, (msg, (ctx, (retryable, after)))) ->
        Error.make ~context:ctx ~retryable
          ?retry_after:(Option.map (fun n -> float_of_int n /. 1024.0) after)
          code msg)
      (pair (oneofl Error.all_codes)
         (pair gen_text
            (pair
               (small_list (pair gen_text gen_text))
               (pair bool (option (int_range 0 100_000)))))))

let gen_sync_frames = QCheck2.Gen.(small_list (triple gen_nat gen_text gen_text))

(* Every non-batch request constructor, uniformly. *)
let gen_simple_request =
  QCheck2.Gen.(
    oneof
      [ map (fun (user, version) -> Wire.Hello { user; version })
          (pair gen_text (int_range 1 20));
        return Wire.Ping;
        return Wire.Stat;
        map (fun c -> Wire.Catalog c)
          (oneofl [ Wire.Entities; Wire.Tools; Wire.Flows ]);
        map (fun f -> Wire.Browse f) gen_filter;
        map
          (fun ((entity, label), (kws, value)) ->
            Wire.Install { entity; label; keywords = kws; value })
          (pair (pair gen_text gen_text) (pair (small_list gen_text) gen_sexp));
        map
          (fun ((iid, label), (comment, kws)) ->
            Wire.Annotate { iid; label; comment; keywords = kws })
          (pair
             (pair gen_nat (option gen_text))
             (pair (option gen_text) (option (small_list gen_text))));
        map (fun s -> Wire.Start_goal s) gen_text;
        map (fun i -> Wire.Start_data i) gen_nat;
        map (fun n -> Wire.Expand n) gen_nat;
        map (fun (n, e) -> Wire.Specialize (n, e)) (pair gen_nat gen_text);
        map (fun (n, iids) -> Wire.Select (n, iids))
          (pair gen_nat (small_list gen_nat));
        map (fun (n, f) -> Wire.Node_browse (n, f)) (pair gen_nat gen_filter);
        return Wire.Leaves;
        map (fun n -> Wire.Run n) gen_nat;
        return Wire.Render;
        map (fun i -> Wire.Recall i) gen_nat;
        map (fun i -> Wire.Trace i) gen_nat;
        map (fun i -> Wire.Uses i) gen_nat;
        map (fun i -> Wire.Refresh i) gen_nat;
        map (fun s -> Wire.Save_flow s) gen_text;
        map (fun s -> Wire.Load_flow s) gen_text;
        return Wire.Shutdown;
        map (fun n -> Wire.Subscribe n) gen_nat;
        map (fun n -> Wire.Repl_ack n) gen_nat;
        return Wire.Lag;
        return Wire.Compact;
        return Wire.Metrics;
        return Wire.Sync_digest;
        map (fun (after, limit) -> Wire.Sync_frames { after; limit })
          (pair gen_nat gen_nat);
        map
          (fun ((origin, upto), frames) ->
            Wire.Sync_ack { origin; upto; frames })
          (pair (pair gen_text gen_nat) gen_sync_frames);
        return Wire.Conflicts;
        map (fun (conflict, winner) -> Wire.Resolve { conflict; winner })
          (pair gen_nat gen_nat);
        return Wire.Snapshot_export
      ])

let gen_request =
  QCheck2.Gen.(
    frequency
      [ (9, gen_simple_request);
        (1, map (fun rs -> Wire.Batch rs) (small_list gen_simple_request))
      ])

let gen_histo =
  QCheck2.Gen.(
    map
      (fun ((n, sum), (mn, mx), (p50, (p90, p99))) ->
        { Metrics.hs_n = n; hs_sum = sum; hs_min = mn; hs_max = mx;
          hs_p50 = p50; hs_p90 = p90; hs_p99 = p99 })
      (triple (pair gen_nat gen_float) (pair gen_float gen_float)
         (pair gen_float (pair gen_float gen_float))))

let gen_metric =
  QCheck2.Gen.(
    oneof
      [ map (fun (n, v) -> Metrics.Counter (n, v)) (pair gen_text gen_nat);
        map (fun (n, v) -> Metrics.Gauge (n, v)) (pair gen_text gen_float);
        map (fun (n, h) -> Metrics.Histogram (n, h)) (pair gen_text gen_histo)
      ])

let gen_simple_response =
  QCheck2.Gen.(
    oneof
      [ return Wire.Ok_unit;
        map (fun i -> Wire.Ok_int i) gen_int;
        map (fun is -> Wire.Ok_ints is) (small_list gen_int);
        map (fun ss -> Wire.Ok_atoms ss) (small_list gen_text);
        map (fun s -> Wire.Ok_text s) gen_text;
        map (fun ns -> Wire.Ok_nodes ns) (small_list (pair gen_nat gen_text));
        map (fun rows -> Wire.Ok_rows rows)
          (small_list
             (map
                (fun ((iid, entity), meta) ->
                  { Wire.row_iid = iid; row_entity = entity; row_meta = meta })
                (pair (pair gen_nat gen_text) gen_meta)));
        map
          (fun ((role, (seq, clock)), (insts, recs), (st, (ht, up))) ->
            Wire.Ok_stat
              { Wire.st_role = role; st_seq = seq; st_clock = clock;
                st_instances = insts; st_records = recs; st_store_tick = st;
                st_history_tick = ht; st_uptime_s = up })
          (triple (pair gen_text (pair gen_nat gen_nat)) (pair gen_nat gen_nat)
             (pair gen_nat (pair gen_nat gen_float)));
        map (fun ((fresh, reran), reused) ->
            Wire.Ok_refresh { fresh; reran; reused })
          (pair (pair gen_nat gen_nat) gen_nat);
        map (fun (seq, data) -> Wire.Ok_snapshot { seq; data })
          (pair gen_nat gen_text);
        map (fun (seq, bytes) -> Wire.Ok_snapshot_begin { seq; bytes })
          (pair gen_nat gen_nat);
        map (fun data -> Wire.Ok_snapshot_chunk { data }) gen_text;
        map (fun digest -> Wire.Ok_snapshot_end { digest }) gen_text;
        map
          (fun ((seq, payload), digest) ->
            Wire.Ok_frame { seq; payload; digest })
          (pair (pair gen_nat gen_text) gen_text);
        map
          (fun (primary_seq, rows) -> Wire.Ok_lags { primary_seq; rows })
          (pair gen_nat
             (small_list
                (map
                   (fun ((f, a), s) ->
                     { Wire.lag_follower = f; lag_acked = a; lag_sent = s })
                   (pair (pair gen_text gen_nat) gen_nat))));
        map (fun ms -> Wire.Ok_metrics ms) (small_list gen_metric);
        map
          (fun ((wsid, (base, seq)), fingerprint, (cursors, entries)) ->
            Wire.Ok_digest { wsid; base; seq; fingerprint; cursors; entries })
          (triple (pair gen_text (pair gen_nat gen_nat)) gen_text
             (pair (small_list (pair gen_text gen_nat))
                (small_list (pair gen_nat gen_text))));
        map (fun fs -> Wire.Ok_frames fs) gen_sync_frames;
        map
          (fun ((ap, sk), (cf, cur)) ->
            Wire.Ok_sync
              { Wire.sy_applied = ap; sy_skipped = sk; sy_conflicts = cf;
                sy_cursor = cur })
          (pair (pair gen_nat gen_nat) (pair gen_nat gen_nat));
        map (fun rows -> Wire.Ok_conflicts rows)
          (small_list
             (map
                (fun ((id, base), (ours, theirs), (origin, (at, winner))) ->
                  { Wire.cf_id = id; cf_base = base; cf_ours = ours;
                    cf_theirs = theirs; cf_origin = origin; cf_at = at;
                    cf_winner = winner })
                (triple (pair gen_nat gen_nat) (pair gen_nat gen_nat)
                   (pair gen_text (pair gen_nat (option gen_nat))))));
        map (fun e -> Wire.Error e) gen_error
      ])

let gen_response =
  QCheck2.Gen.(
    frequency
      [ (9, gen_simple_response);
        (1, map (fun rs -> Wire.Ok_batch rs) (small_list gen_simple_response))
      ])

(* ------------------------------------------------------------------ *)
(* The codec-equivalence oracle                                        *)
(* ------------------------------------------------------------------ *)

let sexp_reparse s = Sexp.of_string (Sexp.to_string s)

let codec_props =
  [
    Util.qcheck ~count:300 "requests round-trip the binary codec" gen_request
      (fun r ->
        Wire.request_of_binary_string (Wire.request_to_binary_string r) = r);
    Util.qcheck ~count:300 "responses round-trip the binary codec" gen_response
      (fun r ->
        Wire.response_of_binary_string (Wire.response_to_binary_string r) = r);
    (* the two codecs must agree on every constructor: what binary
       decodes to is exactly what the sexp path decodes to *)
    Util.qcheck ~count:300 "request codecs agree (sexp oracle)" gen_request
      (fun r ->
        Wire.request_of_binary_string (Wire.request_to_binary_string r)
        = Wire.request_of_sexp (sexp_reparse (Wire.request_to_sexp r)));
    Util.qcheck ~count:300 "response codecs agree (sexp oracle)" gen_response
      (fun r ->
        Wire.response_of_binary_string (Wire.response_to_binary_string r)
        = Wire.response_of_sexp (sexp_reparse (Wire.response_to_sexp r)));
    Alcotest.test_case "binary decode rejects trailing bytes" `Quick (fun () ->
        let s = Wire.request_to_binary_string Wire.Ping ^ "\x00" in
        match Wire.request_of_binary_string s with
        | _ -> Alcotest.fail "expected a Wire_error"
        | exception Wire.Wire_error m ->
          Alcotest.(check bool) "names the trailing bytes" true
            (Util.contains m "trailing"));
    Alcotest.test_case "binary decode rejects unknown tags" `Quick (fun () ->
        match Wire.request_of_binary_string "\xff" with
        | _ -> Alcotest.fail "expected a Wire_error"
        | exception Wire.Wire_error _ -> ());
    Alcotest.test_case "binary decode rejects truncated bodies" `Quick
      (fun () ->
        let whole = Wire.request_to_binary_string (Wire.Start_goal "perf") in
        let torn = String.sub whole 0 (String.length whole - 2) in
        match Wire.request_of_binary_string torn with
        | _ -> Alcotest.fail "expected a Wire_error"
        | exception Wire.Wire_error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Framing over real sockets                                           *)
(* ------------------------------------------------------------------ *)

let with_sockpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ()))
    (fun () -> f a b)

(* Send from a thread: socketpair buffers are finite, so big frames
   need a concurrent reader. *)
let send_threaded f =
  let t = Thread.create f () in
  Fun.protect ~finally:(fun () -> Thread.join t)

let header_roundtrip codec () =
  with_sockpair @@ fun a b ->
  let span = Obs.new_root () in
  Wire.send_request ~deadline_ms:1234 ~trace:span codec a (Wire.Run 7);
  match Wire.recv_request b with
  | None -> Alcotest.fail "expected a frame"
  | Some (req, meta, seen) ->
    Alcotest.(check bool) "request" true (req = Wire.Run 7);
    Alcotest.(check bool) "codec sniffed" true (seen = codec);
    Alcotest.(check (option int)) "deadline" (Some 1234) meta.Wire.fm_deadline_ms;
    (match meta.Wire.fm_trace with
    | None -> Alcotest.fail "expected a trace token"
    | Some ctx ->
      Alcotest.(check string) "trace id" span.Obs.trace_id ctx.Obs.trace_id;
      Alcotest.(check int) "span id" span.Obs.span_id ctx.Obs.span_id)

let framing =
  [
    Alcotest.test_case "header tokens round-trip (binary)" `Quick
      (header_roundtrip Wire.Binary);
    Alcotest.test_case "header tokens round-trip (sexp)" `Quick
      (header_roundtrip Wire.Sexp);
    Alcotest.test_case "receivers sniff the codec per frame" `Quick (fun () ->
        with_sockpair @@ fun a b ->
        (* the v8 handshake moment: a sexp hello, then binary frames on
           the same stream — no receiver-side mode switch *)
        Wire.send_request Wire.Sexp a
          (Wire.Hello { user = "u"; version = Wire.protocol_version });
        Wire.send_request Wire.Binary a Wire.Stat;
        Wire.send_request Wire.Sexp a Wire.Ping;
        (match Wire.recv_request b with
        | Some (Wire.Hello _, _, Wire.Sexp) -> ()
        | _ -> Alcotest.fail "expected a sexp hello");
        (match Wire.recv_request b with
        | Some (Wire.Stat, _, Wire.Binary) -> ()
        | _ -> Alcotest.fail "expected a binary stat");
        match Wire.recv_request b with
        | Some (Wire.Ping, _, Wire.Sexp) -> ()
        | _ -> Alcotest.fail "expected a sexp ping");
    Alcotest.test_case "large payload bodies survive binary framing" `Quick
      (fun () ->
        with_sockpair @@ fun a b ->
        (* well past [zero_copy_min]: the body rides as its own iovec
           slice through the gathered write *)
        let data = String.init 3_000_000 (fun i -> Char.chr (i land 0xff)) in
        send_threaded
          (fun () ->
            Wire.send_response Wire.Binary a
              (Wire.Ok_frame { seq = 42; payload = data; digest = "d" }))
          (fun () ->
            match Wire.recv_response b with
            | Some (Wire.Ok_frame { seq; payload; digest }, _, Wire.Binary) ->
              Alcotest.(check int) "seq" 42 seq;
              Alcotest.(check string) "digest" "d" digest;
              Alcotest.(check bool) "payload intact" true (payload = data)
            | _ -> Alcotest.fail "expected a binary frame"));
    Alcotest.test_case "a batch flush delivers every frame in order" `Quick
      (fun () ->
        with_sockpair @@ fun a b ->
        let items =
          List.init 64 (fun i ->
              ( Wire.Ok_frame
                  { seq = i; payload = String.make (200 * i) 'x'; digest = "" },
                if i mod 2 = 0 then Some (Obs.new_root ()) else None ))
        in
        send_threaded
          (fun () -> Wire.send_response_batch Wire.Binary a items)
          (fun () ->
            List.iteri
              (fun i (want, trace) ->
                match Wire.recv_response b with
                | Some (got, meta, Wire.Binary) ->
                  Alcotest.(check bool)
                    (Printf.sprintf "frame %d" i)
                    true (got = want);
                  Alcotest.(check bool)
                    (Printf.sprintf "trace %d" i)
                    true
                    (Option.is_some meta.Wire.fm_trace = Option.is_some trace)
                | _ -> Alcotest.fail "expected a binary frame")
              items));
    Alcotest.test_case "a binary frame on a legacy sexp reader is refused"
      `Quick (fun () ->
        with_sockpair @@ fun a b ->
        Wire.send_request Wire.Binary a Wire.Ping;
        match Wire.recv b with
        | _ -> Alcotest.fail "expected a Wire_error"
        | exception Wire.Wire_error m ->
          Alcotest.(check bool) "names the binary frame" true
            (Util.contains m "binary"));
  ]

(* ------------------------------------------------------------------ *)
(* The version interop matrix                                          *)
(* ------------------------------------------------------------------ *)

let only entity =
  { Test_server.no_filter with Store.f_entities = Some [ entity ] }

let stim_sexp =
  Codec.value_to_sexp (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))

let counter_of name metrics =
  List.fold_left
    (fun acc m ->
      match m with
      | Metrics.Counter (n, v) when n = name -> acc + v
      | _ -> acc)
    0 metrics

let interop =
  [
    Alcotest.test_case "binary and sexp clients share one server" `Quick
      (fun () ->
        Test_server.with_server @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~user:"v8" ~socket @@ fun c8 ->
        Client.with_client ~user:"v7" ~version:7 ~socket @@ fun c7 ->
        let iid =
          Client.install c8 ~entity:E.stimuli ~label:"from-v8" stim_sexp
        in
        (* the downlevel sexp peer sees the binary peer's write *)
        let rows = Client.browse c7 (only E.stimuli) in
        Alcotest.(check bool) "sexp client reads it" true
          (List.exists (fun r -> r.Wire.row_iid = iid) rows);
        ignore (Client.install c7 ~entity:E.stimuli ~label:"from-v7" stim_sexp);
        Alcotest.(check int) "binary client reads both" 2
          (List.length (Client.browse c8 (only E.stimuli)));
        (* both codecs moved real bytes, and the server metered them *)
        let ms = Client.metrics c8 in
        Alcotest.(check bool) "binary bytes metered" true
          (counter_of "wire.binary.bytes_in" ms > 0
          && counter_of "wire.binary.bytes_out" ms > 0);
        Alcotest.(check bool) "sexp bytes metered" true
          (counter_of "wire.sexp.bytes_in" ms > 0
          && counter_of "wire.sexp.bytes_out" ms > 0));
    Alcotest.test_case "a sexp-feed follower of a binary-era primary converges"
      `Quick (fun () ->
        Test_journal.with_dir @@ fun root ->
        Unix.mkdir root 0o755;
        let pdir = Filename.concat root "p"
        and fdir = Filename.concat root "f" in
        let psock = Filename.concat root "p.sock"
        and fsock = Filename.concat root "f.sock" in
        let p =
          Server.start ~seed:Test_server.seed ~db:pdir ~socket:psock
            Standard_schemas.odyssey
        in
        (* the --wire sexp lever: the replication feed hellos with v7,
           so the whole stream rides the legacy codec *)
        let fl =
          Server.start ~follow:psock ~feed_version:7 ~db:fdir ~socket:fsock
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            (try Server.stop fl; Server.wait fl with _ -> ());
            (try Server.stop p; Server.wait p with _ -> ()))
          (fun () ->
            Client.with_client ~user:"w" ~socket:psock @@ fun cp ->
            Client.with_client ~user:"r" ~socket:fsock @@ fun cf ->
            ignore
              (Test_server.perf_run cp (Eda.Circuits.c17 ()) "mixed-pair");
            Test_replica.wait_until ~what:"sexp-feed catch-up"
              (Test_replica.caught_up cp cf);
            let _, _, _, fpp, _, _ = Client.sync_digest cp in
            let _, _, _, fpf, _, _ = Client.sync_digest cf in
            Alcotest.(check string)
              "fingerprints agree across the codec boundary" fpp fpf));
    Alcotest.test_case "a sexp sync round against a binary-era server" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun root ->
        Unix.mkdir root 0o755;
        let adir = Filename.concat root "a"
        and bdir = Filename.concat root "b" in
        let asock = Filename.concat root "a.sock"
        and bsock = Filename.concat root "b.sock" in
        let a =
          Server.start ~seed:Test_server.seed ~db:adir ~socket:asock
            Standard_schemas.odyssey
        in
        let b =
          Server.start ~db:bdir ~socket:bsock Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            (try Server.stop a; Server.wait a with _ -> ());
            (try Server.stop b; Server.wait b with _ -> ()))
          (fun () ->
            Client.with_client ~user:"wa" ~socket:asock @@ fun ca ->
            ignore
              (Client.install ca ~entity:E.stimuli ~label:"sync-me" stim_sexp);
            (* the pulling side speaks v7: every sync verb crosses the
               codec boundary *)
            Client.with_client ~user:"sync" ~version:7 ~socket:asock
            @@ fun pull ->
            Client.with_client ~user:"sync" ~version:7 ~socket:bsock
            @@ fun push ->
            let wsid_a, _, seq_a, fpa, _, _ = Client.sync_digest pull in
            let frames = Client.sync_frames pull ~after:0 ~limit:10_000 in
            Alcotest.(check int) "pulled the whole wal" seq_a
              (List.length frames);
            let stats = Client.sync_push push ~origin:wsid_a ~upto:seq_a frames in
            Alcotest.(check int) "cursor advanced" seq_a stats.Wire.sy_cursor;
            let _, _, _, fpb, _, _ = Client.sync_digest push in
            Alcotest.(check string) "fingerprints converge" fpa fpb));
  ]

(* ------------------------------------------------------------------ *)
(* Torn sends and renegotiation                                        *)
(* ------------------------------------------------------------------ *)

let faults =
  [
    Alcotest.test_case "a redial after a torn binary frame renegotiates" `Quick
      (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Server.wait t)
          (fun () ->
            Client.with_client ~retries:2 ~socket @@ fun c ->
            Client.ping c (* negotiate binary before arming the fault *);
            (* the next binary frame dies 7 bytes in.  The client must
               drop, redial, redo the hello from sexp, land back on
               binary and retry — transparently *)
            Fault.arm ~times:1 "wire.send" (Fault.Torn 7);
            let stat = Client.stat c in
            Alcotest.(check string) "retried to an answer" "primary"
              stat.Wire.st_role;
            Alcotest.(check int) "the fault fired" 1 (Fault.fired "wire.send");
            (* the renegotiated connection keeps working *)
            ignore
              (Client.install c ~entity:E.stimuli ~label:"post-tear" stim_sexp);
            Alcotest.(check int) "applied exactly once" 1
              (List.length (Client.browse c (only E.stimuli)))));
    Alcotest.test_case "a torn hello fails the dial, not the codec state"
      `Quick (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Server.wait t)
          (fun () ->
            (* the hello itself tears: no connection was ever
               established, so the injection surfaces raw from the
               eager dial *)
            Fault.arm ~times:1 "wire.send" (Fault.Torn 5);
            (match Client.connect ~socket () with
            | c ->
              Client.close c;
              Alcotest.fail "expected the torn hello to surface"
            | exception Fault.Injected _ -> ());
            Alcotest.(check int) "the fault fired" 1 (Fault.fired "wire.send");
            (* a fresh dial renegotiates from scratch *)
            Client.with_client ~socket @@ fun c ->
            Alcotest.(check string) "fresh hello lands on binary" "primary"
              (Client.stat c).Wire.st_role));
  ]

let suite =
  [
    ("wire-v8 codec", codec_props);
    ("wire-v8 framing", framing);
    ("wire-v8 interop", interop);
    ("wire-v8 faults", faults);
  ]
