(* The design-server daemon: the typed client surface end-to-end,
   concurrent multi-client serializability, capacity and timeout
   limits, graceful shutdown and restart-replay. *)

open Ddf
module E = Standard_schemas.E

(* The CLI's first-run seed: standard tool catalog plus the default
   models and option sets. *)
let seed ctx =
  let w = Workspace.of_session (Session.of_context ctx) in
  ignore
    (Engine.install (Workspace.ctx w) ~entity:E.device_models ~label:"models"
       (Value.Device_models Eda.Device_model.default));
  ignore
    (Engine.install (Workspace.ctx w) ~entity:E.sim_options ~label:"sim opts"
       (Value.Sim_options Value.default_sim_options));
  ignore
    (Engine.install (Workspace.ctx w) ~entity:E.placement_options
       ~label:"placement opts"
       (Value.Placement_options Value.default_placement_options))

let with_server ?max_clients ?request_timeout f =
  Test_journal.with_dir @@ fun dir ->
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start ?max_clients ?request_timeout ~seed ~db:dir ~socket
      Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f t ~dir ~socket)

let no_filter =
  { Store.f_entities = None; f_user = None; f_from = None; f_to = None;
    f_keywords = []; f_text = None }

let first_instance c entity =
  match
    Client.browse c { no_filter with Store.f_entities = Some [ entity ] }
  with
  | row :: _ -> row.Wire.row_iid
  | [] -> failwith ("no " ^ entity ^ " on the server")

(* A remote goal-based performance run: the section 4.1 walkthrough
   driven entirely through the wire protocol. *)
let perf_run c nl label =
  let nl_iid =
    Client.install c ~entity:E.edited_netlist ~label
      (Codec.value_to_sexp (Value.Netlist nl))
  in
  let stim_iid =
    Client.install c ~entity:E.stimuli ~label:(label ^ "-stim")
      (Codec.value_to_sexp
         (Value.Stimuli (Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs)))
  in
  let root = Client.start_goal c E.performance in
  (match List.find_opt (fun (_, e) -> e = E.circuit) (Client.expand c root) with
  | Some (nid, _) -> ignore (Client.expand c nid)
  | None -> ());
  let leaves = Client.leaves c in
  let node entity = fst (List.find (fun (_, e) -> e = entity) leaves) in
  Client.select c (node E.simulator) [ first_instance c E.simulator ];
  Client.select c (node E.netlist) [ nl_iid ];
  Client.select c (node E.stimuli) [ stim_iid ];
  Client.select c (node E.device_models) [ first_instance c E.device_models ];
  (nl_iid, Client.run c root)

let surface =
  [
    Alcotest.test_case "the typed client surface end-to-end" `Quick (fun () ->
        with_server @@ fun t ~dir:_ ~socket ->
        Client.with_client ~user:"sutton" ~socket @@ fun c ->
        Client.ping c;
        let s0 = Client.stat c in
        Alcotest.(check bool) "seeded" true (s0.Wire.st_instances > 0);
        Alcotest.(check bool) "tools listed" true
          (List.length (Client.catalog c Wire.Tools) > 0);
        let nl_iid, results = perf_run c (Eda.Circuits.c17 ()) "c17" in
        Alcotest.(check bool) "ran" true (results <> []);
        let out = List.hd results in
        (* identity travelled with the mutations *)
        let row =
          List.find
            (fun r -> r.Wire.row_iid = nl_iid)
            (Client.browse c { no_filter with Store.f_user = Some "sutton" })
        in
        Alcotest.(check string) "stamped user" "sutton"
          row.Wire.row_meta.Store.user;
        Client.annotate c ~label:"the plot" ~keywords:[ "good" ] out;
        let row =
          List.find
            (fun r -> r.Wire.row_iid = out)
            (Client.browse c { no_filter with Store.f_keywords = [ "good" ] })
        in
        Alcotest.(check string) "annotated" "the plot"
          row.Wire.row_meta.Store.label;
        Alcotest.(check bool) "trace renders" true
          (Util.contains (Client.trace c out) "performance");
        Alcotest.(check bool) "uses finds the result" true
          (List.mem out (Client.uses c nl_iid));
        let fresh, _reran, _reused = Client.refresh c out in
        Alcotest.(check bool) "refresh reuses the up-to-date result" true
          (fresh = out);
        let s1 = Client.stat c in
        Alcotest.(check bool) "history recorded" true
          (s1.Wire.st_records > s0.Wire.st_records);
        Alcotest.(check int) "ticks track instances"
          (s1.Wire.st_instances + 1) s1.Wire.st_store_tick;
        ignore t);
    Alcotest.test_case "server-side errors come back typed" `Quick (fun () ->
        with_server @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~socket @@ fun c ->
        match Client.trace c 999 with
        | _ -> Alcotest.fail "expected Client_error"
        | exception Client.Client_error e ->
          Alcotest.(check bool) "mentions the instance" true
            (Util.contains (Error.message e) "999"));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrency                                                         *)
(* ------------------------------------------------------------------ *)

let concurrency =
  [
    Alcotest.test_case "concurrent clients serialize without lost updates"
      `Quick (fun () ->
        let n_clients = 5 and n_rounds = 3 in
        let outcomes = Array.make n_clients (Error (Failure "did not run")) in
        let final =
          with_server @@ fun t ~dir:_ ~socket ->
          let worker i () =
            outcomes.(i) <-
              (try
                 Client.with_client ~user:(Printf.sprintf "u%d" i) ~socket
                 @@ fun c ->
                 let mine = ref [] in
                 for j = 1 to n_rounds do
                   let label = Printf.sprintf "u%d-n%d" i j in
                   let nl =
                     Eda.Circuits.random ~n_inputs:3 ~n_gates:5
                       (Eda.Rng.create ((i * 100) + j))
                   in
                   let nl_iid, results = perf_run c nl label in
                   mine := (nl_iid, label) :: !mine;
                   (* interleave reads and consistency refreshes *)
                   ignore (Client.browse c no_filter);
                   List.iter (fun iid -> ignore (Client.refresh c iid)) results
                 done;
                 Ok !mine
               with e -> Error e)
          in
          let threads =
            List.init n_clients (fun i -> Thread.create (worker i) ())
          in
          List.iter Thread.join threads;
          let ctx = Server.context t in
          Test_journal.state ctx
        in
        (* every client finished, and every install survived with its
           exact label and owner: no lost updates, stable iids *)
        Array.iteri
          (fun i outcome ->
            match outcome with
            | Error e ->
              Alcotest.failf "client %d failed: %s" i (Printexc.to_string e)
            | Ok mine ->
              Alcotest.(check int) "rounds" n_rounds (List.length mine);
              List.iter
                (fun (_iid, label) ->
                  Alcotest.(check bool) (label ^ " present") true
                    (Util.contains final label))
                mine)
          outcomes;
        ignore final);
    Alcotest.test_case "restart replays the multi-client history exactly"
      `Quick (fun () ->
        let dir_kept = ref "" in
        let final = ref "" in
        (Test_journal.with_dir @@ fun dir ->
         dir_kept := dir;
         let socket = Filename.concat dir "s.sock" in
         let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
         let threads =
           List.init 4 (fun i ->
               Thread.create
                 (fun () ->
                   Client.with_client ~user:(Printf.sprintf "u%d" i) ~socket
                   @@ fun c ->
                   ignore
                     (perf_run c
                        (Eda.Circuits.random ~n_inputs:3 ~n_gates:4
                           (Eda.Rng.create i))
                        (Printf.sprintf "r%d" i)))
                 ())
         in
         List.iter Thread.join threads;
         Server.stop t;
         Server.wait t;
         final := Test_journal.state (Server.context t);
         (* same --db, fresh process: bit-identical store and history *)
         Test_journal.reopened_equals dir !final);
        ignore !dir_kept);
  ]

(* ------------------------------------------------------------------ *)
(* Limits and lifecycle                                                *)
(* ------------------------------------------------------------------ *)

let limits =
  [
    Alcotest.test_case "capacity limit rejects the surplus client" `Quick
      (fun () ->
        with_server ~max_clients:1 @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~user:"first" ~socket @@ fun c1 ->
        Client.ping c1;
        match Client.connect ~user:"second" ~socket () with
        | c2 ->
          Client.close c2;
          Alcotest.fail "expected a capacity rejection"
        | exception Client.Client_error e ->
          Alcotest.(check bool) "says so" true
            (Util.contains (Error.message e) "capacity"));
    Alcotest.test_case "mutations time out in the write queue" `Quick
      (fun () ->
        with_server ~request_timeout:(-1.0) @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~socket @@ fun c ->
        (* reads never hit the queue *)
        Client.ping c;
        ignore (Client.browse c no_filter);
        match
          Client.install c ~entity:E.stimuli ~label:"late"
            (Codec.value_to_sexp
               (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])))
        with
        | _ -> Alcotest.fail "expected a timeout"
        | exception Client.Client_error e ->
          Alcotest.(check bool) "says so" true
            (Util.contains (Error.message e) "timed out"));
    Alcotest.test_case "shutdown request stops the daemon and fsyncs" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
        let c = Client.connect ~user:"ops" ~socket () in
        Client.shutdown c;
        Server.wait t;
        Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
        Test_journal.reopened_equals dir
          (Test_journal.state (Server.context t)));
  ]

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let observability =
  [
    Alcotest.test_case "every request gets a server span" `Quick (fun () ->
        let sink, events = Obs_sinks.memory () in
        Obs.set_sink (Obs_sinks.locked sink);
        Fun.protect ~finally:Obs.clear_sink @@ fun () ->
        with_server @@ fun _t ~dir:_ ~socket ->
        (Client.with_client ~user:"traced" ~socket @@ fun c ->
         Client.ping c;
         ignore (Client.browse c no_filter);
         ignore
           (Client.install c ~entity:E.stimuli ~label:"s"
              (Codec.value_to_sexp
                 (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])))));
        let spans =
          List.filter (fun e -> e.Obs.name = "server.request") (events ())
        in
        Alcotest.(check bool) "spans recorded" true (List.length spans >= 4);
        let ops =
          List.filter_map
            (fun e ->
              match List.assoc_opt "op" e.Obs.attrs with
              | Some (Obs.Str s) -> Some s
              | _ -> None)
            spans
        in
        List.iter
          (fun op ->
            Alcotest.(check bool) (op ^ " traced") true (List.mem op ops))
          [ "hello"; "ping"; "browse"; "install" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Pipelined batches                                                   *)
(* ------------------------------------------------------------------ *)

let stim_install label =
  Wire.Install
    {
      entity = E.stimuli;
      label;
      keywords = [];
      value = Codec.value_to_sexp (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]));
    }

let batching =
  [
    Alcotest.test_case "batch answers positionally, writes visible" `Quick
      (fun () ->
        with_server @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~user:"b" ~socket @@ fun c ->
        let resps =
          Client.batch c
            [ Wire.Ping; stim_install "s1"; stim_install "s2";
              Wire.Browse no_filter ]
        in
        match resps with
        | [ Wire.Ok_unit; Wire.Ok_int i1; Wire.Ok_int i2; Wire.Ok_rows rows ] ->
          Alcotest.(check bool) "iids ascend in batch order" true (i2 > i1);
          let iids = List.map (fun r -> r.Wire.row_iid) rows in
          Alcotest.(check bool) "earlier batch writes visible to later read"
            true
            (List.mem i1 iids && List.mem i2 iids)
        | _ -> Alcotest.fail "unexpected batch response shape");
    Alcotest.test_case "an error mid-batch does not stop the rest" `Quick
      (fun () ->
        with_server @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~user:"b" ~socket @@ fun c ->
        let resps =
          Client.batch c
            [ Wire.Ping;
              Wire.Install
                { entity = "no-such-entity"; label = "x"; keywords = [];
                  value =
                    Codec.value_to_sexp
                      (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])) };
              stim_install "after-the-error" ]
        in
        match resps with
        | [ Wire.Ok_unit; Wire.Error _; Wire.Ok_int _ ] -> ()
        | _ -> Alcotest.fail "expected ok/error/ok");
    Alcotest.test_case "nested and connection-level requests refused" `Quick
      (fun () ->
        with_server @@ fun _t ~dir:_ ~socket ->
        Client.with_client ~user:"b" ~socket @@ fun c ->
        match Client.batch c [ Wire.Batch []; Wire.Shutdown; Wire.Ping ] with
        | [ Wire.Error _; Wire.Error _; Wire.Ok_unit ] ->
          (* the Shutdown inside the batch must NOT have shut the server
             down: the connection still answers *)
          Client.ping c
        | _ -> Alcotest.fail "expected error/error/ok");
    Alcotest.test_case "batch writes are durable across a restart" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
        let i1 =
          Client.with_client ~user:"b" ~socket @@ fun c ->
          match Client.batch c [ stim_install "keep-me" ] with
          | [ Wire.Ok_int i ] -> i
          | _ -> Alcotest.fail "unexpected batch response shape"
        in
        Server.stop t;
        Server.wait t;
        let t2 = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t2;
            Server.wait t2)
          (fun () ->
            Client.with_client ~user:"b" ~socket @@ fun c ->
            Alcotest.(check bool) "acked batch write replayed" true
              (List.exists
                 (fun r -> r.Wire.row_iid = i1)
                 (Client.browse c no_filter))));
  ]

let suite =
  [
    ("server.surface", surface);
    ("server.concurrency", concurrency);
    ("server.limits", limits);
    ("server.batch", batching);
    ("server.obs", observability);
  ]
