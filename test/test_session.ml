(* Tests for the Hercules session layer: catalogs, the four design
   approaches, pop-up operations, browsing, selection and running. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let expect_session_error name f =
  Util.expect_exn name
    (function Ddf.Error.Ddf_error _ -> true | _ -> false)
    f

let catalog_tests =
  [
    t "entity catalog lists the whole schema" (fun () ->
        let w = Workspace.create () in
        check Alcotest.int "entities"
          (Schema.size (Workspace.schema w))
          (List.length (Session.entity_catalog (Workspace.session w))));
    t "tool catalog lists only tools" (fun () ->
        let w = Workspace.create () in
        let tools = Session.tool_catalog (Workspace.session w) in
        check Alcotest.bool "extractor" true (List.mem E.extractor tools);
        check Alcotest.bool "no netlist" false (List.mem E.netlist tools));
    t "data catalog reflects the store" (fun () ->
        let w = Workspace.create () in
        let before = List.length (Session.data_catalog (Workspace.session w)) in
        let _ = Workspace.install_netlist w (Eda.Circuits.c17 ()) in
        check Alcotest.int "one more" (before + 1)
          (List.length (Session.data_catalog (Workspace.session w))));
    t "flow catalog save and reload" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let n = Session.start_goal_based s E.performance in
        ignore (Session.expand s n);
        Session.save_flow s "simulate";
        check (Alcotest.list Alcotest.string) "catalog" [ "simulate" ]
          (Session.flow_catalog s);
        let saved = Session.current_flow s in
        let _ = Session.start_plan_based s "simulate" in
        check Alcotest.bool "same flow" true
          (Canonical.equal saved (Session.current_flow s)));
    expect_session_error "loading a missing flow" (fun () ->
        let w = Workspace.create () in
        Session.start_plan_based (Workspace.session w) "ghost");
    expect_session_error "saving an empty flow" (fun () ->
        let w = Workspace.create () in
        Session.save_flow (Workspace.session w) "empty");
  ]

let approach_tests =
  [
    expect_session_error "tool-based start rejects data entities" (fun () ->
        let w = Workspace.create () in
        Session.start_tool_based (Workspace.session w) E.netlist);
    t "goal options of a tool node" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let n = Session.start_tool_based s E.extractor in
        check
          Alcotest.(slist string compare)
          "goals"
          [ E.extracted_netlist; E.extraction_statistics ]
          (Session.goal_options s n));
    t "data-based start pre-selects the instance" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let iid = Workspace.install_netlist w (Eda.Circuits.c17 ()) in
        let n = Session.start_data_based s iid in
        check (Alcotest.option (Alcotest.list Alcotest.int)) "selected"
          (Some [ iid ]) (Session.selection s n));
    t "specialization options" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let n = Session.start_goal_based s E.netlist in
        check Alcotest.int "three" 3
          (List.length (Session.specialization_options s n)));
  ]

let interaction_tests =
  [
    t "browse restricts to compatible entities" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let nl = Workspace.install_netlist w (Eda.Circuits.c17 ()) in
        let _stim = Workspace.install_stimuli w (Eda.Stimuli.exhaustive [ "a" ]) in
        let n = Session.start_goal_based s E.netlist in
        let visible = Session.browse s n in
        check Alcotest.bool "netlist visible" true (List.mem nl visible);
        check Alcotest.int "only the netlist" 1 (List.length visible));
    expect_session_error "selecting an incompatible instance" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let stim = Workspace.install_stimuli w (Eda.Stimuli.exhaustive [ "a" ]) in
        let n = Session.start_goal_based s E.netlist in
        Session.select s n [ stim ]);
    expect_session_error "empty selection rejected" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let n = Session.start_goal_based s E.netlist in
        Session.select s n []);
    t "executable requires all leaves selected" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let nl_iid = Workspace.install_netlist w (Eda.Circuits.full_adder ()) in
        let ext = Session.start_goal_based s E.extracted_netlist in
        ignore (Session.expand s ext);
        check Alcotest.bool "not yet" false (Session.executable s ext);
        let flow = Session.current_flow s in
        List.iter
          (fun nid ->
            let entity = Task_graph.entity_of flow nid in
            if entity = E.extractor then
              Session.select s nid [ Workspace.tool w E.extractor ]
            else Session.select s nid [ nl_iid ] |> ignore)
          (Workspace.find_nodes flow E.extractor);
        (* layout leaf still unselected *)
        check Alcotest.bool "still not" false (Session.executable s ext));
    t "run produces results and history" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let layout_iid =
          Workspace.install_layout w (Eda.Layout.place (Eda.Circuits.c17 ()))
        in
        let ext = Session.start_goal_based s E.extracted_netlist in
        ignore (Session.expand s ext);
        let flow = Session.current_flow s in
        Session.select s
          (List.hd (Workspace.find_nodes flow E.extractor))
          [ Workspace.tool w E.extractor ];
        Session.select s
          (List.hd (Workspace.find_nodes flow E.layout))
          [ layout_iid ];
        check Alcotest.bool "executable" true (Session.executable s ext);
        let results = Session.run s ext in
        check Alcotest.int "one result" 1 (List.length results);
        let trace_g, _, _ = Session.history_of s (List.hd results) in
        check Alcotest.int "trace has three nodes" 3 (Task_graph.size trace_g));
    t "unexpand drops orphaned selections" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let layout_iid =
          Workspace.install_layout w (Eda.Layout.place (Eda.Circuits.c17 ()))
        in
        let ext = Session.start_goal_based s E.extracted_netlist in
        ignore (Session.expand s ext);
        let flow = Session.current_flow s in
        let lay = List.hd (Workspace.find_nodes flow E.layout) in
        Session.select s lay [ layout_iid ];
        Session.unexpand s ext;
        check Alcotest.bool "selection gone" true (Session.selection s lay = None));
    t "task window and browser render" (fun () ->
        let w = Workspace.create () in
        let s = Workspace.session w in
        let _ = Workspace.install_netlist w ~label:"c17 netlist" (Eda.Circuits.c17 ()) in
        let n = Session.start_goal_based s E.performance in
        ignore (Session.expand s n);
        let window = Session.render_task_window s in
        check Alcotest.bool "shows the flow" true
          (Util.contains window "performance");
        let flow = Session.current_flow s in
        let circuit = List.hd (Workspace.find_nodes flow E.circuit) in
        ignore (Session.expand s circuit);
        let flow = Session.current_flow s in
        let nl_node = List.hd (Workspace.find_nodes flow E.netlist) in
        let browser = Session.render_browser s nl_node in
        check Alcotest.bool "lists the netlist" true
          (Util.contains browser "c17 netlist"));
  ]

let suite =
  [
    ("session.catalogs", catalog_tests);
    ("session.approaches", approach_tests);
    ("session.interaction", interaction_tests);
  ]
