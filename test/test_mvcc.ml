(* The MVCC read path: snapshot isolation of pinned views, multi-domain
   read/write stress, and the server's zero-lock read invariant. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let no_filter = Store.any_filter

(* A workspace with [n] installed netlists; returns the iids. *)
let seeded n =
  let w = Workspace.create ~user:"mvcc" () in
  let iids =
    List.init n (fun i ->
        Workspace.install_netlist w
          ~label:(Printf.sprintf "nl%d" i)
          (Eda.Circuits.random ~n_inputs:3 ~n_gates:(4 + (i mod 5))
             (Eda.Rng.create (i + 1))))
  in
  (w, iids)

(* Everything a pinned view answers about the store and one instance's
   version lineage, flattened so structural equality is the whole
   comparison. *)
let observe (v : Engine.view) schema probe =
  let st = v.Engine.v_store in
  let browse = Store.Snapshot.browse st no_filter in
  let versions = History.Snapshot.versions v.Engine.v_history st schema probe in
  let metas =
    List.map
      (fun iid ->
        let m = Store.Snapshot.meta_of st iid in
        (iid, Store.Snapshot.entity_of st iid, m.Store.label, m.Store.comment))
      browse
  in
  (browse, versions, metas, Store.Snapshot.instance_count st)

(* ------------------------------------------------------------------ *)
(* Snapshot isolation (qcheck)                                         *)
(* ------------------------------------------------------------------ *)

(* Pin a view, then hammer the live store from another domain; the
   pinned view's answers must be identical before, during and after
   the burst. *)
let isolation_prop (n, burst) =
  let w, iids = seeded (max 1 n) in
  let ctx = Workspace.ctx w in
  let schema = Workspace.schema w in
  let probe = List.hd iids in
  let v = Session.pin (Workspace.session w) in
  let before = observe v schema probe in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to burst do
          ignore
            (Workspace.install_netlist w
               ~label:(Printf.sprintf "burst%d" i)
               (Eda.Circuits.random ~n_inputs:2 ~n_gates:3
                  (Eda.Rng.create (1000 + i))) : Store.iid);
          Store.annotate ctx.Engine.store probe
            ~comment:(Printf.sprintf "scribble %d" i) ()
        done)
  in
  (* reads racing the burst: every one must equal the pinned state *)
  let during_ok = ref true in
  for _ = 1 to 20 do
    if observe v schema probe <> before then during_ok := false
  done;
  Domain.join writer;
  let after = observe v schema probe in
  (* the live store, meanwhile, must have moved on *)
  let moved =
    Store.instance_count ctx.Engine.store
    = (let b, _, _, _ = before in
       List.length b)
      + burst
  in
  !during_ok && after = before && moved

let isolation_gen = QCheck2.Gen.(pair (int_range 1 8) (int_range 1 30))

(* ------------------------------------------------------------------ *)
(* Multi-domain stress                                                 *)
(* ------------------------------------------------------------------ *)

(* One writer domain commits while several reader domains continuously
   pin fresh views and walk them.  Within one pinned view nothing may
   ever be torn: browse, the per-entity index, metadata and the
   instance count must agree with each other. *)
let stress_test () =
  let w, _ = seeded 4 in
  let ctx = Workspace.ctx w in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          ignore
            (Workspace.install_netlist w
               ~label:(Printf.sprintf "w%d" !i)
               (Eda.Circuits.random ~n_inputs:2 ~n_gates:3
                  (Eda.Rng.create !i)) : Store.iid)
        done)
  in
  let reader () =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let v = Engine.pin ctx in
          let st = v.Engine.v_store in
          let browse = Store.Snapshot.browse st no_filter in
          let count = Store.Snapshot.instance_count st in
          (* a pinned view never changes under the reader's feet *)
          if List.length browse <> count then Atomic.incr failures;
          if Store.Snapshot.browse st no_filter <> browse then
            Atomic.incr failures;
          List.iter
            (fun iid ->
              (* every listed instance is fully resolvable in the
                 same view — no half-installed rows *)
              let entity = Store.Snapshot.entity_of st iid in
              let by_entity = Store.Snapshot.instances_of_entity st entity in
              if not (List.mem iid by_entity) then Atomic.incr failures;
              ignore (Store.Snapshot.meta_of st iid : Store.meta))
            browse;
          (* history side: every record's outputs exist in the paired
             store view (capture ordering invariant) *)
          List.iter
            (fun (r : History.record) ->
              List.iter
                (fun (_, out) ->
                  if not (Store.Snapshot.mem st out) then
                    Atomic.incr failures)
                r.History.outputs)
            (History.Snapshot.records v.Engine.v_history)
        done)
  in
  let readers = List.init 3 (fun _ -> reader ()) in
  Unix.sleepf 0.5;
  Atomic.set stop true;
  Domain.join writer;
  List.iter Domain.join readers;
  check Alcotest.int "no torn reads" 0 (Atomic.get failures)

(* ------------------------------------------------------------------ *)
(* The server's zero-lock read path                                    *)
(* ------------------------------------------------------------------ *)

let counter_value name ms =
  List.fold_left
    (fun acc m ->
      match m with
      | Ddf_obs.Metrics.Counter (n, v) when n = name -> v
      | _ -> acc)
    0 ms

let with_read_server ~read_domains f =
  Test_journal.with_dir @@ fun dir ->
  let socket = Filename.concat dir "s.sock" in
  let t =
    Server.start ~seed:Test_server.seed ~read_domains ~db:dir ~socket
      Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f socket)

(* Under read-only load the writer commit lock is never taken: the
   lock-acquisition counter must not move by even one. *)
let zero_lock_reads () =
  with_read_server ~read_domains:2 @@ fun socket ->
  Client.with_client ~user:"reader" ~socket @@ fun c ->
  (* a couple of mutations first, so the counter is known non-zero *)
  let nl = Eda.Circuits.full_adder () in
  let iid =
    Client.install c ~entity:E.edited_netlist ~label:"fa"
      (Codec.value_to_sexp (Value.Netlist nl))
  in
  Client.annotate c iid ~comment:"warm";
  let locks_before =
    counter_value "server.lock_acquisitions" (Client.metrics c)
  in
  check Alcotest.bool "mutations did take the commit lock" true
    (locks_before > 0);
  for _ = 1 to 25 do
    ignore (Client.browse c no_filter : Ddf_wire.Wire.instance_row list);
    ignore (Client.stat c : Ddf_wire.Wire.stat);
    ignore (Client.catalog c Ddf_wire.Wire.Entities : string list);
    ignore (Client.uses c iid : Store.iid list)
  done;
  let ms = Client.metrics c in
  check Alcotest.int "lock counter flat under read-only load" locks_before
    (counter_value "server.lock_acquisitions" ms);
  check Alcotest.bool "reads went through the domain pool" true
    (counter_value "server.pool_reads" ms > 0)

(* Pooled reads still see every acknowledged write (read-your-writes
   through the published view). *)
let pooled_read_your_writes () =
  with_read_server ~read_domains:2 @@ fun socket ->
  Client.with_client ~user:"rw" ~socket @@ fun c ->
  for i = 1 to 10 do
    let iid =
      Client.install c ~entity:E.edited_netlist
        ~label:(Printf.sprintf "nl%d" i)
        (Codec.value_to_sexp
           (Value.Netlist
              (Eda.Circuits.random ~n_inputs:2 ~n_gates:3 (Eda.Rng.create i))))
    in
    let rows = Client.browse c no_filter in
    check Alcotest.bool
      (Printf.sprintf "install %d visible to the next read" i)
      true
      (List.exists (fun r -> r.Ddf_wire.Wire.row_iid = iid) rows)
  done

let suite =
  [
    ( "mvcc.snapshot",
      [
        Util.qcheck ~count:15 "pinned views are isolated from write bursts"
          isolation_gen isolation_prop;
        t "multi-domain stress: no torn reads" stress_test;
      ] );
    ( "mvcc.server",
      [
        t "read path takes zero locks" zero_lock_reads;
        t "pooled reads see acknowledged writes" pooled_read_your_writes;
      ] );
  ]
