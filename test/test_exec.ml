(* Tests for the execution engine, parallel scheduling and consistency
   maintenance. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

let expect_exec_error name f =
  Util.expect_exn name
    (function Ddf.Error.Ddf_error _ -> true | _ -> false)
    f

(* Shared setup: a workspace plus the fig5 flow fully bound. *)
let fig5_setup () =
  let w = Workspace.create () in
  let reference = Eda.Circuits.full_adder () in
  let layout_iid =
    Workspace.install_layout w ~label:"fa layout" (Eda.Layout.place reference)
  in
  let reference_iid = Workspace.install_netlist w ~label:"fa ref" reference in
  let stimuli_iid =
    Workspace.install_stimuli w
      (Eda.Stimuli.exhaustive reference.Eda.Netlist.primary_inputs)
  in
  let f = Standard_flows.fig5 () in
  let bindings =
    Workspace.bind_catalog_tools w f.Standard_flows.f5_graph
      ~already:
        [
          (f.Standard_flows.f5_layout, layout_iid);
          (f.Standard_flows.f5_stimuli, stimuli_iid);
          (f.Standard_flows.f5_reference, reference_iid);
          (f.Standard_flows.f5_device_models, Workspace.default_device_models w);
        ]
  in
  (w, f, bindings)

let engine_tests =
  [
    t "fig5 executes end to end" (fun () ->
        let w, f, bindings = fig5_setup () in
        let run = Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings in
        check Alcotest.int "executed" 4 run.Engine.stats.Engine.executed;
        check Alcotest.int "composed" 1 run.Engine.stats.Engine.composed;
        let verdict =
          Workspace.verification_of w
            (Engine.result_of run f.Standard_flows.f5_verification)
        in
        check Alcotest.bool "layout matches reference" true
          verdict.Eda.Lvs.equivalent);
    t "memoization reuses history on identical reruns" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let r1 = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let r2 = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        check Alcotest.int "nothing re-executed" 0 r2.Engine.stats.Engine.executed;
        check Alcotest.bool "memo hits" true (r2.Engine.stats.Engine.memo_hits > 0);
        check Alcotest.int "same result"
          (Engine.result_of r1 f.Standard_flows.f5_performance)
          (Engine.result_of r2 f.Standard_flows.f5_performance));
    t "memo can be disabled" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let _ = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let r2 = Engine.execute ~memo:false ctx f.Standard_flows.f5_graph ~bindings in
        check Alcotest.int "all re-executed" 4 r2.Engine.stats.Engine.executed);
    expect_exec_error "unbound mandatory leaf" (fun () ->
        let w, f, bindings = fig5_setup () in
        let bindings =
          List.filter (fun (n, _) -> n <> f.Standard_flows.f5_layout) bindings
        in
        Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings);
    expect_exec_error "binding with an incompatible instance" (fun () ->
        let w, f, bindings = fig5_setup () in
        let stim =
          Workspace.install_stimuli w (Eda.Stimuli.exhaustive [ "a" ])
        in
        let bindings =
          List.map
            (fun (n, i) ->
              if n = f.Standard_flows.f5_layout then (n, stim) else (n, i))
            bindings
        in
        Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings);
    t "optional leaves may stay unbound" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.c17 () in
        let nl_iid = Workspace.install_netlist w nl in
        let stim_iid =
          Workspace.install_stimuli w
            (Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs)
        in
        let g, perf = Task_graph.create (Workspace.schema w) E.performance in
        let g, _ = Task_graph.expand g perf in  (* includes sim_options *)
        let circuit = Workspace.find_nodes g E.circuit in
        let g, _ =
          Task_graph.expand g (List.hd circuit)
        in
        let bindings =
          Workspace.bind_catalog_tools w g
            ~already:
              ((List.hd (Workspace.find_nodes g E.netlist), nl_iid)
              :: (List.hd (Workspace.find_nodes g E.stimuli), stim_iid)
              :: [ (List.hd (Workspace.find_nodes g E.device_models),
                    Workspace.default_device_models w) ])
        in
        let run = Engine.execute ctx g ~bindings in
        check Alcotest.bool "performance produced" true
          (Engine.result_of run perf > 0));
    t "fan-out runs once per selected instance" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.full_adder () in
        let l1 = Workspace.install_layout w (Eda.Layout.place nl) in
        let l2 =
          Workspace.install_layout w
            (Eda.Layout.place ~name_suffix:"_b" (Eda.Circuits.c17 ()))
        in
        let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let extractor, lay = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let runs =
          Engine.execute_fanout ctx g
            ~bindings:
              [ (extractor, [ Workspace.tool w E.extractor ]); (lay, [ l1; l2 ]) ]
        in
        check Alcotest.int "two runs" 2 (List.length runs);
        let outs =
          List.map (fun r -> Engine.result_of r ext) runs |> List.sort_uniq compare
        in
        check Alcotest.int "distinct results" 2 (List.length outs));
    expect_exec_error "fan-out explosion is rejected" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.full_adder () in
        let iids =
          List.init 2 (fun i ->
              Workspace.install_layout w
                (Eda.Layout.place ~name_suffix:(Printf.sprintf "_%d" i) nl))
        in
        let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let extractor, lay = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        Engine.execute_fanout ~max_combinations:1 ctx g
          ~bindings:
            [ (extractor, [ Workspace.tool w E.extractor ]); (lay, iids) ]);
    t "typing rejects mismatched installs" (fun () ->
        let w = Workspace.create () in
        match
          Engine.install (Workspace.ctx w) ~entity:E.edited_netlist
            (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))
        with
        | _ -> Alcotest.fail "expected Type_mismatch"
        | exception Typing.Type_mismatch _ -> ());
    t "history records one record per invocation" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let _ = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        check Alcotest.int "five records" 5 (History.size (Workspace.history w)));
  ]

let parallel_tests =
  [
    t "schedule invariants over machine counts" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let g, roots = Standard_flows.wide_flow 8 in
        ignore roots;
        let bindings =
          Workspace.bind_catalog_tools w g
            ~already:
              (List.map
                 (fun nid ->
                   ( nid,
                     Workspace.install_layout w
                       (Eda.Layout.place
                          ~name_suffix:(Printf.sprintf "_%d" nid)
                          (Eda.Circuits.full_adder ())) ))
                 (Workspace.find_nodes g E.layout))
        in
        let run = Engine.execute ~memo:false ctx g ~bindings in
        let s1 = Parallel.schedule g ~costs:run.Engine.costs ~machines:1 in
        let s2 = Parallel.schedule g ~costs:run.Engine.costs ~machines:2 in
        let s4 = Parallel.schedule g ~costs:run.Engine.costs ~machines:4 in
        check Alcotest.int "serial = makespan on 1" s1.Parallel.serial_us
          s1.Parallel.makespan_us;
        check Alcotest.bool "2 <= 1" true
          (s2.Parallel.makespan_us <= s1.Parallel.makespan_us);
        check Alcotest.bool "4 <= 2" true
          (s4.Parallel.makespan_us <= s2.Parallel.makespan_us);
        check Alcotest.bool "near-linear on independent tasks" true
          (Parallel.speedup s4 > 3.0));
    t "schedule respects dependencies" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ~memo:false ctx f.Standard_flows.f5_graph ~bindings in
        let s = Parallel.schedule f.Standard_flows.f5_graph
                  ~costs:run.Engine.costs ~machines:4 in
        (* the performance must start after the extraction finishes *)
        let find pred =
          List.find (fun (e : Parallel.entry) -> pred e.Parallel.outputs)
            s.Parallel.entries
        in
        let extraction =
          find (fun outs -> List.mem f.Standard_flows.f5_extracted outs)
        in
        let simulation =
          find (fun outs -> List.mem f.Standard_flows.f5_performance outs)
        in
        check Alcotest.bool "ordered" true
          (simulation.Parallel.start_us >= extraction.Parallel.finish_us));
    t "domain execution matches serial results" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let serial = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let w2, f2, bindings2 = fig5_setup () in
        let ctx2 = Workspace.ctx w2 in
        let assignment, executed =
          Parallel.execute_parallel ~domains:3 ctx2 f2.Standard_flows.f5_graph
            ~bindings:bindings2
        in
        check Alcotest.int "five invocations" 5 executed;
        let hash w r nid =
          Store.hash_of (Workspace.store w) (List.assoc nid r)
        in
        check Alcotest.string "same performance payload"
          (hash w serial.Engine.assignment f.Standard_flows.f5_performance)
          (hash w2 assignment f2.Standard_flows.f5_performance));
  ]

let consistency_tests =
  [
    t "refresh is a no-op when sources are unchanged" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let perf = Engine.result_of run f.Standard_flows.f5_performance in
        let report = Consistency.refresh ctx perf in
        check Alcotest.int "same instance" perf report.Consistency.fresh_instance;
        check Alcotest.int "nothing reran" 0 report.Consistency.reran);
    t "refresh reruns only the stale sub-flow" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let plot = Engine.result_of run f.Standard_flows.f5_plot in
        (* edit the reference netlist: the verification branch goes
           stale, the plot branch does not *)
        let reference = List.assoc f.Standard_flows.f5_reference bindings in
        let session =
          Workspace.install_editor_session w
            (Eda.Edit_script.create
               [ Eda.Edit_script.Insert_buffer { net = "x1"; gname = "bz" } ])
        in
        let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
        let g, fresh = Task_graph.expand g out in
        let editor, source = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let _ =
          Engine.execute ctx g ~bindings:[ (editor, session); (source, reference) ]
        in
        (* plot does not depend on the reference: refresh finds it fresh *)
        let report = Consistency.refresh ctx plot in
        check Alcotest.int "plot unchanged" plot report.Consistency.fresh_instance;
        (* verification does: refresh re-runs it on the new version *)
        let verification = Engine.result_of run f.Standard_flows.f5_verification in
        let report = Consistency.refresh ctx verification in
        check Alcotest.bool "new verification" true
          (report.Consistency.fresh_instance <> verification);
        check Alcotest.int "exactly one task reran" 1 report.Consistency.reran;
        check Alcotest.int "one source rebound" 1
          (List.length report.Consistency.rebound));
    t "derived_status tracks staleness" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl_iid = Workspace.install_netlist w (Eda.Circuits.full_adder ()) in
        check Alcotest.bool "never" true
          (Consistency.derived_status ctx ~source:nl_iid
             ~goal_entity:E.synthesized_layout
           = Consistency.Never_extracted);
        let g, lay = Task_graph.create (Workspace.schema w) E.synthesized_layout in
        let g, fresh = Task_graph.expand ~include_optional:false g lay in
        let placer, nln = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let _ =
          Engine.execute ctx g
            ~bindings:[ (placer, Workspace.tool w E.placer); (nln, nl_iid) ]
        in
        (match
           Consistency.derived_status ctx ~source:nl_iid
             ~goal_entity:E.synthesized_layout
         with
        | Consistency.Up_to_date _ -> ()
        | Consistency.Out_of_date _ | Consistency.Never_extracted ->
          Alcotest.fail "expected up to date"));
  ]

let suite =
  [
    ("exec.engine", engine_tests);
    ("exec.parallel", parallel_tests);
    ("exec.consistency", consistency_tests);
  ]

let decompose_tests =
  [
    t "decomposing a circuit yields its parts" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let circuit = Engine.result_of run f.Standard_flows.f5_circuit in
        let parts = Engine.decompose ctx circuit in
        check Alcotest.int "two parts" 2 (List.length parts);
        check Alcotest.bool "netlist part" true
          (List.exists
             (fun (e, _) -> e = E.netlist || e = E.extracted_netlist)
             parts);
        (* the decomposition is in the history: parts chain back to the
           composite *)
        let _, part = List.hd parts in
        let ancestors = History.ancestor_instances (Workspace.history w) part in
        check Alcotest.bool "chains to the composite" true
          (List.mem circuit ancestors));
    expect_exec_error "decomposing a non-composite fails" (fun () ->
        let w = Workspace.create () in
        let iid = Workspace.install_netlist w (Eda.Circuits.c17 ()) in
        Engine.decompose (Workspace.ctx w) iid);
  ]

let recall_tests =
  [
    t "recall restores the flow with its selections" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let perf = Engine.result_of run f.Standard_flows.f5_performance in
        let s = Workspace.session w in
        let root = Session.recall s perf in
        let flow = Session.current_flow s in
        check Alcotest.string "root is the performance" E.performance
          (Task_graph.entity_of flow root);
        (* every leaf carries the original selection, so re-running is
           a pure memo hit returning the same instance *)
        let results = Session.run s root in
        check (Alcotest.list Alcotest.int) "same instance" [ perf ] results);
    t "recalled task can be modified and re-executed" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let run = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let perf = Engine.result_of run f.Standard_flows.f5_performance in
        let s = Workspace.session w in
        let root = Session.recall s perf in
        (* modify: select fresh stimuli for the stimuli leaf *)
        let flow = Session.current_flow s in
        let stim_node =
          List.hd (Workspace.find_nodes flow E.stimuli)
        in
        let stim2 =
          Workspace.install_stimuli w
            (Eda.Stimuli.walking_ones [ "a"; "b"; "cin" ])
        in
        Session.select s stim_node [ stim2 ];
        let results = Session.run s root in
        check Alcotest.bool "new result" true (List.hd results <> perf));
  ]

let suite =
  suite
  @ [ ("exec.decompose", decompose_tests); ("exec.recall", recall_tests) ]

(* Tools as data input to other tools (section 3.3): the optimizer
   taking a compiled simulator as its evaluator. *)
let tools_as_data_tests =
  [
    t "optimizer accepts a compiled simulator as evaluator" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.ripple_adder 4 in
        let nl_iid = Workspace.install_netlist w nl in
        let optimizers = Workspace.install_optimizers w in
        let hill = List.assoc Eda.Optimize.Hill_climb optimizers in
        (* flow: optimized_netlist <- (optimizer, netlist,
           evaluator=compiled_simulator <- (compiler, netlist)) *)
        let g, out = Task_graph.create (Workspace.schema w) E.optimized_netlist in
        let g, fresh = Task_graph.expand ~include_optional:false g out in
        let opt_node, src_node =
          match fresh with [ a; b ] -> (a, b) | _ -> assert false
        in
        let g, eval_node = Task_graph.add_node g E.compiled_simulator in
        let g = Task_graph.connect g ~user:out ~role:"evaluator" ~dep:eval_node in
        let g, fresh = Task_graph.expand g eval_node in
        let compiler_node =
          List.find
            (fun n -> Task_graph.entity_of g n = E.simulator_compiler)
            fresh
        in
        let nl_node =
          List.find (fun n -> Task_graph.entity_of g n = E.netlist) fresh
        in
        let run =
          Engine.execute ctx g
            ~bindings:
              [ (opt_node, hill); (src_node, nl_iid); (nl_node, nl_iid);
                (compiler_node, Workspace.tool w E.simulator_compiler) ]
        in
        let optimized = Workspace.netlist_of w (Engine.result_of run out) in
        (* the result still computes the same function *)
        let stim = Eda.Stimuli.exhaustive nl.Eda.Netlist.primary_inputs in
        let responses n =
          Eda.Sim_compiled.run (Eda.Sim_compiled.compile n) stim
        in
        check Alcotest.bool "function preserved" true
          (List.map (List.map snd) (responses nl)
           = List.map (List.map snd) (responses optimized));
        (* the history shows the simulator flowing INTO the optimizer *)
        let r = History.derivation_of (Workspace.history w)
                  (Engine.result_of run out) in
        match r with
        | Some r ->
          check Alcotest.bool "evaluator recorded" true
            (List.mem_assoc "evaluator" r.History.inputs)
        | None -> Alcotest.fail "no derivation");
    t "activity-aware cost differs from the static one" (fun () ->
        let nl = Eda.Circuits.ripple_adder 4 in
        let compiled = Eda.Sim_compiled.compile nl in
        let stim = Eda.Stimuli.for_netlist ~n:64 nl (Eda.Rng.create 3) in
        let toggles = Eda.Sim_compiled.run_trace compiled stim in
        let activity net =
          match List.assoc_opt net toggles with Some n -> n | None -> 0
        in
        let static = Eda.Optimize.cost Eda.Optimize.default_objective nl in
        let dynamic =
          Eda.Optimize.cost_with_activity Eda.Optimize.default_objective
            ~activity nl
        in
        check Alcotest.bool "higher with activity" true (dynamic > static));
    t "toggle counts are sane" (fun () ->
        let nl = Eda.Circuits.inverter () in
        let compiled = Eda.Sim_compiled.compile nl in
        let stim =
          Eda.Stimuli.create
            [ [ ("in", Eda.Logic.V0) ]; [ ("in", Eda.Logic.V1) ];
              [ ("in", Eda.Logic.V0) ] ]
        in
        let toggles = Eda.Sim_compiled.run_trace compiled stim in
        check Alcotest.int "out toggles twice" 2 (List.assoc "out" toggles));
  ]

let suite = suite @ [ ("exec.tools_as_data", tools_as_data_tests) ]

(* Batched encapsulations (section 4.1): multi-selected stimuli merge
   into one simulator call instead of fanning out. *)
let batching_tests =
  [
    t "batched simulator runs once over merged stimuli" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.c17 () in
        let nl_iid = Workspace.install_netlist w nl in
        let stim n seed =
          Workspace.install_stimuli w
            (Eda.Stimuli.for_netlist ~n nl (Eda.Rng.create seed))
        in
        let s1 = stim 4 1 and s2 = stim 6 2 in
        let g, perf = Task_graph.create (Workspace.schema w) E.performance in
        let g, _ = Task_graph.expand ~include_optional:false g perf in
        let circuit = List.hd (Workspace.find_nodes g E.circuit) in
        let g, _ = Task_graph.expand g circuit in
        let single role iid = (List.hd (Workspace.find_nodes g role), [ iid ]) in
        let runs =
          Engine.execute_fanout ctx g
            ~bindings:
              [
                single E.simulator (Workspace.tool w E.simulator);
                single E.netlist nl_iid;
                single E.device_models (Workspace.default_device_models w);
                (List.hd (Workspace.find_nodes g E.stimuli), [ s1; s2 ]);
              ]
        in
        (* one combination, not two *)
        check Alcotest.int "one run" 1 (List.length runs);
        let perf_iid = Engine.result_of (List.hd runs) perf in
        let p = Workspace.performance_of w perf_iid in
        check Alcotest.int "all vectors in one call" 10
          p.Eda.Performance.vectors_simulated;
        (* the merged stimuli instance is a recorded design object *)
        match History.derivation_of (Workspace.history w) perf_iid with
        | Some r ->
          let merged = List.assoc "stimuli" r.History.inputs in
          (match History.derivation_of (Workspace.history w) merged with
          | Some m ->
            check Alcotest.int "two parts" 2 (List.length m.History.inputs)
          | None -> Alcotest.fail "merge not recorded")
        | None -> Alcotest.fail "no derivation");
    t "non-batched tools still fan out" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let lay n = Workspace.install_layout w
            (Eda.Layout.place ~name_suffix:(Printf.sprintf "_%d" n)
               (Eda.Circuits.full_adder ())) in
        let l1 = lay 1 and l2 = lay 2 in
        let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let extractor, layn = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
        let runs =
          Engine.execute_fanout ctx g
            ~bindings:
              [ (extractor, [ Workspace.tool w E.extractor ]); (layn, [ l1; l2 ]) ]
        in
        check Alcotest.int "two runs" 2 (List.length runs));
    t "batched merge memoizes" (fun () ->
        let w = Workspace.create () in
        let ctx = Workspace.ctx w in
        let nl = Eda.Circuits.c17 () in
        let nl_iid = Workspace.install_netlist w nl in
        let s1 = Workspace.install_stimuli w
            (Eda.Stimuli.for_netlist ~n:2 nl (Eda.Rng.create 1)) in
        let s2 = Workspace.install_stimuli w
            (Eda.Stimuli.for_netlist ~n:2 nl (Eda.Rng.create 2)) in
        let g, perf = Task_graph.create (Workspace.schema w) E.performance in
        let g, _ = Task_graph.expand ~include_optional:false g perf in
        let circuit = List.hd (Workspace.find_nodes g E.circuit) in
        let g, _ = Task_graph.expand g circuit in
        let bindings =
          [
            (List.hd (Workspace.find_nodes g E.simulator), [ Workspace.tool w E.simulator ]);
            (List.hd (Workspace.find_nodes g E.netlist), [ nl_iid ]);
            (List.hd (Workspace.find_nodes g E.device_models),
             [ Workspace.default_device_models w ]);
            (List.hd (Workspace.find_nodes g E.stimuli), [ s1; s2 ]);
          ]
        in
        let r1 = Engine.execute_fanout ctx g ~bindings in
        let before = Store.instance_count (Workspace.store w) in
        let r2 = Engine.execute_fanout ctx g ~bindings in
        check Alcotest.int "no new instances" before
          (Store.instance_count (Workspace.store w));
        check Alcotest.int "same result"
          (Engine.result_of (List.hd r1) perf)
          (Engine.result_of (List.hd r2) perf));
  ]

let suite = suite @ [ ("exec.batching", batching_tests) ]

let parallel_memo_tests =
  [
    t "parallel execution memoizes against the history" (fun () ->
        let w, f, bindings = fig5_setup () in
        let ctx = Workspace.ctx w in
        let _ = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
        let _, executed =
          Parallel.execute_parallel ~domains:2 ctx f.Standard_flows.f5_graph
            ~bindings
        in
        check Alcotest.int "nothing re-executed" 0 executed);
    t "critical path report is consistent" (fun () ->
        let nl = Eda.Circuits.ripple_adder 4 in
        let report = Eda.Performance.critical_path_report nl in
        (match report with
        | [] -> Alcotest.fail "empty path"
        | first :: _ ->
          check Alcotest.bool "starts at a start point" true
            (first.Eda.Performance.ps_gate = None
            && first.Eda.Performance.ps_arrival_ps = 0));
        let last = List.nth report (List.length report - 1) in
        check Alcotest.int "ends at the critical path"
          (Eda.Performance.critical_path nl)
          last.Eda.Performance.ps_arrival_ps;
        (* arrivals increase along the path *)
        let rec monotone = function
          | a :: (b :: _ as rest) ->
            a.Eda.Performance.ps_arrival_ps <= b.Eda.Performance.ps_arrival_ps
            && monotone rest
          | [ _ ] | [] -> true
        in
        check Alcotest.bool "monotone" true (monotone report));
    t "sequential timing ends at a flop input" (fun () ->
        let nl = Eda.Circuits.counter 4 in
        let report = Eda.Performance.critical_path_report nl in
        let last = List.nth report (List.length report - 1) in
        check Alcotest.bool "ends at a d-net" true
          (List.exists
             (fun (f : Eda.Netlist.flop) -> f.Eda.Netlist.d = last.Eda.Performance.ps_net)
             nl.Eda.Netlist.flops));
  ]

let suite = suite @ [ ("exec.parallel_memo", parallel_memo_tests) ]

let registry_tests =
  [
    t "tool subtypes inherit encapsulations" (fun () ->
        (* add fast_extractor <: extractor to the schema; its instances
           are served by the extractor encapsulation unchanged (A4) *)
        let schema =
          Schema.add_entity Standard_schemas.odyssey
            (Schema.tool ~parent:E.extractor "fast_extractor" [])
        in
        let ctx = Engine.create_context schema in
        let fast =
          Engine.install ctx ~entity:"fast_extractor" ~label:"turbo"
            (Value.Tool (Value.Builtin "extractor:turbo"))
        in
        let layout_iid =
          Engine.install ctx ~entity:E.edited_layout
            (Value.Layout (Eda.Layout.place (Eda.Circuits.c17 ())))
        in
        let g, ext = Task_graph.create schema E.extracted_netlist in
        let g, fresh = Task_graph.expand g ext in
        let tool_node, lay =
          match fresh with [ a; b ] -> (a, b) | _ -> assert false
        in
        (* specialize the tool node to the subtype and bind the fast one *)
        let g = Task_graph.specialize g tool_node "fast_extractor" in
        let run =
          Engine.execute ctx g ~bindings:[ (tool_node, fast); (lay, layout_iid) ]
        in
        check Alcotest.int "extraction ran" 1 run.Engine.stats.Engine.executed);
    Util.expect_exn "unregistered tools are reported"
      (function Ddf_tools.Encapsulation.Tool_error _ -> true | _ -> false)
      (fun () ->
        let schema =
          Schema.add_entity Standard_schemas.odyssey
            (Schema.tool "mystery_tool" [])
        in
        let schema =
          Schema.add_entity schema
            (Schema.entity "mystery_output"
               [ Schema.functional "mystery_tool" ])
        in
        let ctx = Engine.create_context schema in
        let tool =
          Engine.install ctx ~entity:"mystery_tool"
            (Value.Tool (Value.Builtin "?"))
        in
        let g, out = Task_graph.create schema "mystery_output" in
        let g, fresh = Task_graph.expand g out in
        let tn = List.hd fresh in
        Engine.execute ctx g ~bindings:[ (tn, tool) ]);
  ]

let suite = suite @ [ ("exec.registry", registry_tests) ]
