(* Anti-entropy sync between disconnected workspaces: fingerprints,
   common-prefix location, bidirectional convergence, conflict
   surfacing and resolution, crash-resumable pulls, the wire v6 verbs
   and the hello compatibility matrix. *)

open Ddf
module E = Standard_schemas.E

let with_dir = Test_journal.with_dir
let fresh_dir = Test_journal.fresh_dir
let rm_rf = Test_journal.rm_rf
let activity = Test_journal.activity

(* Byte-copy a database directory — a laptop clone.  The clone must
   shed its workspace identity (and any sync progress) to sync as its
   own peer, exactly like a cloned machine-id. *)
let rec copy_dir src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun f ->
      let s = Filename.concat src f and d = Filename.concat dst f in
      if Sys.is_directory s then copy_dir s d
      else begin
        let ic = open_in_bin s in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let oc = open_out_bin d in
        output_string oc data;
        close_out oc
      end)
    (Sys.readdir src)

let clone src dst =
  copy_dir src dst;
  List.iter
    (fun f ->
      let p = Filename.concat dst f in
      if Sys.file_exists p then Sys.remove p)
    [ "wsid.ddf"; "sync.ddf" ]

let with_clone_pair ~prep f =
  with_dir @@ fun base ->
  let j = Journal.open_ ~dir:base Standard_schemas.odyssey in
  prep (Journal.context j);
  Journal.close j;
  let da = fresh_dir () and db = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf da;
      rm_rf db)
    (fun () ->
      clone base da;
      clone base db;
      let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
      let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
      Fun.protect
        ~finally:(fun () ->
          Journal.close ja;
          Journal.close jb)
        (fun () -> f ja jb))

(* Derive one new version of [base] through an edit task — the
   smallest unit of divergent work two offline designers can do. *)
let edit ctx ~name base =
  let w = Workspace.of_session (Session.of_context ctx) in
  let es =
    Workspace.install_editor_session w ~label:("session " ^ name)
      (Eda.Edit_script.create ~name [ Eda.Edit_script.Rename name ])
  in
  let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
  let g, fresh = Task_graph.expand g out in
  let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run =
    Engine.execute (Workspace.ctx w) g ~bindings:[ (editor, es); (src, base) ]
  in
  Engine.result_of run out

let fp j = Sync.fingerprint (Journal.context j)

let check_converged ?(msg = "fingerprints converge") ja jb =
  Alcotest.(check string) msg (fp ja) (fp jb)

(* ------------------------------------------------------------------ *)
(* Fingerprints and digests                                            *)
(* ------------------------------------------------------------------ *)

let fingerprints =
  [
    Alcotest.test_case "fingerprint is iid-independent but state-sensitive"
      `Quick (fun () ->
        (* the same deterministic work in two directories assigns the
           same iids; the fingerprint must also survive a journal
           replay (same state, rebuilt context) and must move when the
           state moves *)
        with_dir @@ fun d1 ->
        with_dir @@ fun d2 ->
        let j1 = Journal.open_ ~dir:d1 Standard_schemas.odyssey in
        let j2 = Journal.open_ ~dir:d2 Standard_schemas.odyssey in
        ignore (activity (Journal.context j1) 2);
        ignore (activity (Journal.context j2) 2);
        Alcotest.(check string) "same work, same fingerprint" (fp j1) (fp j2);
        Store.annotate (Journal.context j1).Engine.store 1 ~label:"moved" ();
        Alcotest.(check bool) "annotation moves the fingerprint" true
          (fp j1 <> fp j2);
        Journal.close j1;
        Journal.close j2);
    Alcotest.test_case "digest carries the journal window and frame md5s"
      `Quick (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        ignore (activity (Journal.context j) 1);
        let d = Sync.digest_of j in
        Alcotest.(check int) "base" (Journal.base_seq j) d.Sync.g_base;
        Alcotest.(check int) "seq" (Journal.seq j) d.Sync.g_seq;
        Alcotest.(check int) "one md5 per wal frame"
          (Journal.seq j - Journal.base_seq j)
          (List.length d.Sync.g_entries);
        Alcotest.(check bool) "wsid minted" true
          (String.length d.Sync.g_wsid > 0);
        Journal.close j);
    Alcotest.test_case "common_prefix finds the divergence point of clones"
      `Quick (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 2))
        @@ fun ja jb ->
        let shared = Journal.seq ja in
        Alcotest.(check int) "clones share their whole history" shared
          (Journal.seq jb);
        Alcotest.(check int) "identical digests agree everywhere" shared
          (Sync.common_prefix (Sync.digest_of ja) (Sync.digest_of jb));
        ignore (activity ~seed:11 (Journal.context ja) 1);
        ignore (activity ~seed:22 (Journal.context jb) 1);
        Alcotest.(check int) "divergent suffixes stop the scan" shared
          (Sync.common_prefix (Sync.digest_of ja) (Sync.digest_of jb)));
  ]

(* ------------------------------------------------------------------ *)
(* Convergence                                                         *)
(* ------------------------------------------------------------------ *)

let convergence =
  [
    Alcotest.test_case "an empty workspace pulls everything, then idles"
      `Quick (fun () ->
        with_dir @@ fun da ->
        with_dir @@ fun db ->
        let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
        let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
        ignore (activity (Journal.context ja) 2);
        let r =
          Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ()
        in
        Alcotest.(check int) "b pulled a's whole journal" (Journal.seq ja)
          r.Sync.rp_into_b.Sync.d_pulled;
        Alcotest.(check bool) "pulls were applied" true
          (r.Sync.rp_into_b.Sync.d_applied > 0);
        check_converged ja jb;
        (* a second session moves no state: echoes deduplicate and the
           cursors already cover both suffixes *)
        let r2 =
          Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ()
        in
        Alcotest.(check int) "nothing new into a" 0
          r2.Sync.rp_into_a.Sync.d_applied;
        Alcotest.(check int) "nothing new into b" 0
          r2.Sync.rp_into_b.Sync.d_applied;
        check_converged ja jb;
        Journal.close ja;
        Journal.close jb);
    Alcotest.test_case "divergent clones converge in one run" `Quick
      (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        ignore (activity ~seed:31 (Journal.context ja) 2);
        ignore (activity ~seed:47 (Journal.context jb) 2);
        Alcotest.(check bool) "genuinely diverged" true (fp ja <> fp jb);
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        check_converged ja jb);
    Alcotest.test_case "dry run counts but applies nothing" `Quick (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        ignore (activity ~seed:5 (Journal.context ja) 1);
        let before = fp jb in
        let r =
          Sync.run ~dry_run:true ~a:(Sync.of_journal ja)
            ~b:(Sync.of_journal jb) ()
        in
        Alcotest.(check bool) "counted the missing suffix" true
          (r.Sync.rp_into_b.Sync.d_pulled > 0);
        Alcotest.(check string) "b untouched" before (fp jb);
        Alcotest.(check (list (pair string int))) "no cursor written" []
          (Sync.cursors jb));
    Alcotest.test_case "third workspace converges transitively" `Quick
      (fun () ->
        (* a -> b -> c: c never talks to a, yet ends with a's work —
           the birth-key identity survives the extra hop *)
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        with_dir @@ fun dc ->
        let jc = Journal.open_ ~dir:dc Standard_schemas.odyssey in
        ignore (activity ~seed:61 (Journal.context ja) 1);
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        ignore
          (Sync.run ~a:(Sync.of_journal jb) ~b:(Sync.of_journal jc) ());
        check_converged ja jc;
        Journal.close jc);
    Alcotest.test_case "peers sharing a workspace id are refused" `Quick
      (fun () ->
        with_dir @@ fun da ->
        let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
        ignore (Journal.wsid ja);
        let db = fresh_dir () in
        Fun.protect ~finally:(fun () -> rm_rf db) @@ fun () ->
        Journal.close ja;
        copy_dir da db (* keeps wsid.ddf: the classic cloning mistake *);
        let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
        let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
        (match
           Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ()
         with
        | _ -> Alcotest.fail "expected a refusal"
        | exception Error.Ddf_error e ->
          Alcotest.(check bool) "typed `Invalid" true (e.Error.code = `Invalid));
        Journal.close ja;
        Journal.close jb);
  ]

(* ------------------------------------------------------------------ *)
(* Conflicts                                                           *)
(* ------------------------------------------------------------------ *)

(* Netlist versions carry their (renamed) netlist name; labels are
   engine-generated summaries, so we match on the payload. *)
let find_version ctx name =
  let store = ctx.Engine.store in
  match
    List.find_opt
      (fun iid ->
        match Store.payload store iid with
        | Value.Netlist nl -> nl.Eda.Netlist.name = name
        | _ -> false)
      (Store.instances_of_entity store E.edited_netlist)
  with
  | Some iid -> iid
  | None -> Alcotest.failf "no netlist version named %s" name

let conflicts =
  [
    Alcotest.test_case
      "both sides deriving the same base surfaces a conflict, not an \
       overwrite"
      `Quick (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        let ca = Journal.context ja and cb = Journal.context jb in
        let base_a = find_version ca "v1" in
        ignore (edit ca ~name:"ours" base_a);
        ignore (edit cb ~name:"theirs" (find_version cb "v1"));
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        (* both versions survive on both sides, as siblings *)
        List.iter
          (fun ctx ->
            ignore (find_version ctx "ours");
            ignore (find_version ctx "theirs"))
          [ ca; cb ];
        let kids =
          History.version_children ca.Engine.history ca.Engine.store
            ca.Engine.schema base_a
        in
        Alcotest.(check int) "sibling versions under the base" 2
          (List.length kids);
        (* ... and the divergence is registered once per side *)
        let open_a = History.conflicts ca.Engine.history in
        Alcotest.(check int) "one open conflict on a" 1 (List.length open_a);
        Alcotest.(check int) "one open conflict on b" 1
          (List.length (History.conflicts cb.Engine.history));
        (* a second session must not re-register it *)
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        Alcotest.(check int) "still one conflict" 1
          (List.length (History.all_conflicts ca.Engine.history));
        check_converged ~msg:"conflicting states still converge" ja jb);
    Alcotest.test_case "a resolution travels to the peer" `Quick (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        let ca = Journal.context ja and cb = Journal.context jb in
        ignore (edit ca ~name:"ours" (find_version ca "v1"));
        ignore (edit cb ~name:"theirs" (find_version cb "v1"));
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        (match History.conflicts ca.Engine.history with
        | [ c ] ->
          ignore
            (History.resolve_conflict ca.Engine.history c.History.cid
               ~winner:(find_version ca "ours")
              : History.conflict)
        | cs -> Alcotest.failf "expected one conflict, got %d" (List.length cs));
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        Alcotest.(check int) "no open conflicts left on b" 0
          (List.length (History.conflicts cb.Engine.history));
        check_converged ~msg:"resolved states converge" ja jb);
    Alcotest.test_case "concurrent annotations merge as a max-register"
      `Quick (fun () ->
        with_clone_pair ~prep:(fun ctx -> ignore (activity ctx 1))
        @@ fun ja jb ->
        let ca = Journal.context ja and cb = Journal.context jb in
        let ia = find_version ca "v1" and ib = find_version cb "v1" in
        Store.annotate ca.Engine.store ia ~label:"alpha" ();
        Store.annotate cb.Engine.store ib ~label:"zulu" ();
        ignore
          (Sync.run ~a:(Sync.of_journal ja) ~b:(Sync.of_journal jb) ());
        Alcotest.(check string) "larger annotation wins on a" "zulu"
          (Store.meta_of ca.Engine.store ia).Store.label;
        Alcotest.(check string) "larger annotation wins on b" "zulu"
          (Store.meta_of cb.Engine.store ib).Store.label;
        Alcotest.(check int) "annotations never conflict" 0
          (List.length (History.all_conflicts ca.Engine.history));
        check_converged ja jb);
  ]

(* ------------------------------------------------------------------ *)
(* Resumability under injected disconnects                             *)
(* ------------------------------------------------------------------ *)

let resume =
  [
    Alcotest.test_case "a severed pull resumes from the persisted cursor"
      `Quick (fun () ->
        with_dir @@ fun da ->
        with_dir @@ fun db ->
        let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
        let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
        ignore (activity (Journal.context ja) 2);
        let wsid_a = Journal.wsid ja in
        Fault.reset ();
        Fault.arm ~after:3 "sync.pull" Fault.Fail;
        (match
           Sync.pull ~batch:1 ~src:(Sync.of_journal ja)
             ~dst:(Sync.of_journal jb) ()
         with
        | _ -> Alcotest.fail "expected the injected disconnect"
        | exception Fault.Injected _ -> ());
        Fault.reset ();
        (* the completed rounds stuck: the cursor marks where to resume *)
        let cursor =
          match List.assoc_opt wsid_a (Sync.cursors jb) with
          | Some c -> c
          | None -> Alcotest.fail "no cursor persisted for the source"
        in
        Alcotest.(check bool) "partial progress persisted" true
          (cursor >= 3 && cursor < Journal.seq ja);
        let d =
          Sync.pull ~batch:1 ~src:(Sync.of_journal ja)
            ~dst:(Sync.of_journal jb) ()
        in
        Alcotest.(check bool) "resume starts at the cursor, not zero" true
          (d.Sync.d_start >= cursor);
        Alcotest.(check int) "resume pulls only the remainder"
          (Journal.seq ja - d.Sync.d_start)
          d.Sync.d_pulled;
        check_converged ja jb;
        Journal.close ja;
        Journal.close jb);
  ]

(* ------------------------------------------------------------------ *)
(* The wire: v6 codecs, the hello matrix, socket-to-socket sync        *)
(* ------------------------------------------------------------------ *)

let rt_request r = Wire.request_of_sexp (Sexp.of_string (Sexp.to_string (Wire.request_to_sexp r)))
let rt_response r = Wire.response_of_sexp (Sexp.of_string (Sexp.to_string (Wire.response_to_sexp r)))

let wire_codecs =
  [
    Alcotest.test_case "the v6 verbs round-trip the codec" `Quick (fun () ->
        let frames = [ (7, "abc123", "(put (iid 7))"); (8, "ff", "x") ] in
        List.iter
          (fun req ->
            Alcotest.(check bool) "request round-trips" true
              (rt_request req = req))
          [ Wire.Sync_digest;
            Wire.Sync_frames { after = 12; limit = 64 };
            Wire.Sync_ack { origin = "w1"; upto = 9; frames };
            Wire.Sync_ack { origin = "w2"; upto = 3; frames = [] };
            Wire.Conflicts;
            Wire.Resolve { conflict = 4; winner = 17 } ];
        List.iter
          (fun resp ->
            Alcotest.(check bool) "response round-trips" true
              (rt_response resp = resp))
          [ Wire.Ok_digest
              { wsid = "w1"; base = 3; seq = 9; fingerprint = "fp";
                cursors = [ ("w2", 5) ]; entries = [ (4, "aa"); (5, "bb") ] };
            Wire.Ok_frames frames;
            Wire.Ok_sync
              { Wire.sy_applied = 2; sy_skipped = 1; sy_conflicts = 1;
                sy_cursor = 9 };
            Wire.Ok_conflicts
              [ { Wire.cf_id = 1; cf_base = 2; cf_ours = 3; cf_theirs = 4;
                  cf_origin = "w2"; cf_at = 11; cf_winner = Some 3 };
                { Wire.cf_id = 2; cf_base = 5; cf_ours = 6; cf_theirs = 7;
                  cf_origin = "w1"; cf_at = 12; cf_winner = None } ] ]);
  ]

let with_server ?dir f =
  let go dir =
    let socket = Filename.concat dir "s.sock" in
    let t = Server.start ~db:dir ~socket Standard_schemas.odyssey in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        Server.wait t)
      (fun () -> f ~dir ~socket)
  in
  match dir with Some d -> go d | None -> with_dir go

let hello_matrix =
  [
    Alcotest.test_case "hello: v4..v8 clients are accepted, outliers refused"
      `Quick (fun () ->
        with_server @@ fun ~dir:_ ~socket ->
        List.iter
          (fun v ->
            Client.with_client ~version:v ~socket @@ fun c -> Client.ping c)
          [ 4; 5; 6; 7; 8 ];
        List.iter
          (fun v ->
            match Client.connect ~version:v ~socket () with
            | c ->
              Client.close c;
              Alcotest.failf "v%d should have been refused" v
            | exception Error.Ddf_error e ->
              Alcotest.(check bool) "typed final refusal" true
                (e.Error.code = `Invalid && not e.Error.retryable))
          [ 3; Wire.protocol_version + 1 ]);
  ]

let sockets =
  [
    Alcotest.test_case "two daemons sync over their sockets" `Quick
      (fun () ->
        with_dir @@ fun da ->
        with_dir @@ fun db ->
        (* seed one side offline, then serve both *)
        let j = Journal.open_ ~dir:da Standard_schemas.odyssey in
        ignore (activity (Journal.context j) 1);
        Journal.close j;
        with_server ~dir:da @@ fun ~dir:_ ~socket:sa ->
        with_server ~dir:db @@ fun ~dir:_ ~socket:sb ->
        Client.with_client ~user:"ann" ~socket:sa @@ fun ca ->
        Client.with_client ~user:"bob" ~socket:sb @@ fun cb ->
        (* divergent work through the wire *)
        ignore
          (Client.install ca ~entity:E.stimuli ~label:"from-a"
             (Codec.value_to_sexp
                (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))));
        ignore
          (Client.install cb ~entity:E.stimuli ~label:"from-b"
             (Codec.value_to_sexp
                (Value.Stimuli (Eda.Stimuli.exhaustive [ "b" ]))));
        let r =
          Sync.run ~a:(Sync.of_client ca) ~b:(Sync.of_client cb) ()
        in
        Alcotest.(check bool) "frames moved both ways" true
          (r.Sync.rp_into_a.Sync.d_pulled > 0
          && r.Sync.rp_into_b.Sync.d_pulled > 0);
        let _, _, _, fpa, _, _ = Client.sync_digest ca in
        let _, _, _, fpb, _, _ = Client.sync_digest cb in
        Alcotest.(check string) "server fingerprints converge" fpa fpb;
        Alcotest.(check int) "no conflicts from disjoint installs" 0
          (List.length (Client.conflicts ca)));
  ]

(* ------------------------------------------------------------------ *)
(* Property: random divergence always converges in <= 2 runs           *)
(* ------------------------------------------------------------------ *)

let converges_gen =
  QCheck2.Gen.(
    pair (int_bound 1_000_000)
      (pair (pair (int_range 0 2) (int_range 0 2)) (int_bound 4)))

let properties =
  [
    Util.qcheck ~count:8 "sync_converges: random suffixes, faulty links"
      converges_gen
      (fun (seed, ((na, nb), fault_after)) ->
        let base = fresh_dir () and da = fresh_dir () and db = fresh_dir () in
        Fun.protect
          ~finally:(fun () ->
            Fault.reset ();
            rm_rf base;
            rm_rf da;
            rm_rf db)
          (fun () ->
            let j = Journal.open_ ~dir:base Standard_schemas.odyssey in
            ignore (activity ~seed (Journal.context j) 1);
            Journal.close j;
            clone base da;
            clone base db;
            let ja = Journal.open_ ~dir:da Standard_schemas.odyssey in
            let jb = Journal.open_ ~dir:db Standard_schemas.odyssey in
            Fun.protect
              ~finally:(fun () ->
                Journal.close ja;
                Journal.close jb)
              (fun () ->
                if na > 0 then
                  ignore (activity ~seed:(seed + 1) (Journal.context ja) na);
                if nb > 0 then
                  ignore (activity ~seed:(seed + 2) (Journal.context jb) nb);
                (* first attempt may die mid-flight on a faulty link *)
                Fault.arm ~after:fault_after "sync.pull" Fault.Fail;
                (try
                   ignore
                     (Sync.run ~batch:3 ~a:(Sync.of_journal ja)
                        ~b:(Sync.of_journal jb) ())
                 with Fault.Injected _ -> ());
                Fault.reset ();
                (* two clean sessions from anywhere reach a fixpoint *)
                ignore
                  (Sync.run ~batch:3 ~a:(Sync.of_journal ja)
                     ~b:(Sync.of_journal jb) ());
                ignore
                  (Sync.run ~batch:3 ~a:(Sync.of_journal ja)
                     ~b:(Sync.of_journal jb) ());
                fp ja = fp jb)));
  ]

let suite =
  [
    ( "sync",
      fingerprints @ convergence @ conflicts @ resume @ wire_codecs
      @ hello_matrix @ sockets @ properties );
  ]
