(* Fault injection: crash-point sweeps over the journal and the
   server proving the robustness contract — acked writes survive a
   crash, un-acked writes never half-apply, shed requests are never
   journaled, failures come back typed with an honest retry contract,
   and the client classifies them correctly. *)

open Ddf
module E = Standard_schemas.E

(* Every test disarms the global registry on the way out so an armed
   point can never leak into an unrelated test. *)
let with_faults f = Fun.protect ~finally:Fault.reset f

let stim_value = Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])
let stim_sexp = Codec.value_to_sexp stim_value

let only entity =
  { Store.f_entities = Some [ entity ]; f_user = None; f_from = None;
    f_to = None; f_keywords = []; f_text = None }

let check_code what want e =
  Alcotest.(check string) what want (Error.code_to_string e.Error.code)

(* ------------------------------------------------------------------ *)
(* The DDF_FAULT grammar                                               *)
(* ------------------------------------------------------------------ *)

let grammar =
  [
    Alcotest.test_case "configure arms skip windows and firing counts"
      `Quick (fun () ->
        with_faults @@ fun () ->
        Fault.configure "journal.fsync=fail@1x2;wire.send=torn:10";
        (* the first hit falls in the @1 skip window *)
        Fault.fire "journal.fsync";
        (match Fault.fire "journal.fsync" with
        | () -> Alcotest.fail "expected an injection"
        | exception Fault.Injected "journal.fsync" -> ());
        (match Fault.fire "journal.fsync" with
        | () -> Alcotest.fail "expected a second injection"
        | exception Fault.Injected _ -> ());
        (* x2 exhausted: the point is quiet again *)
        Fault.fire "journal.fsync";
        Alcotest.(check int) "fired twice" 2 (Fault.fired "journal.fsync");
        (match Fault.check "wire.send" with
        | Some (Fault.Torn 10) -> ()
        | _ -> Alcotest.fail "expected Torn 10");
        Fault.reset ();
        Fault.fire "journal.fsync" (* disarmed: a no-op *));
    Alcotest.test_case "a malformed spec is refused" `Quick (fun () ->
        with_faults @@ fun () ->
        match Fault.configure "journal.fsync=explode" with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Journal crash points                                                *)
(* ------------------------------------------------------------------ *)

let journal_faults =
  [
    Alcotest.test_case "a torn frame fail-stops now and truncates on reopen"
      `Quick (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let j =
          Journal.open_ ~sync_mode:Journal.Always ~dir
            Standard_schemas.odyssey
        in
        let ctx = Journal.context j in
        ignore (Engine.install ctx ~entity:E.stimuli ~label:"acked" stim_value);
        let acked = Test_journal.state ctx in
        (* the next frame reaches the disk 5 bytes long — a crash
           mid-append *)
        Fault.arm "journal.torn_write" (Fault.Torn 5);
        (match Engine.install ctx ~entity:E.stimuli ~label:"torn" stim_value with
        | _ -> Alcotest.fail "expected an injected torn write"
        | exception Fault.Injected "journal.torn_write" -> ());
        Alcotest.(check int) "fired once" 1 (Fault.fired "journal.torn_write");
        (* fail-stop: the journal refuses every later mutation, so the
           torn frame can never be buried under good ones *)
        Alcotest.(check bool) "poisoned" true (Journal.failed j <> None);
        (match Engine.install ctx ~entity:E.stimuli ~label:"after" stim_value with
        | _ -> Alcotest.fail "expected a fail-stop refusal"
        | exception Journal.Journal_error e ->
          check_code "unavailable" "unavailable" e;
          Alcotest.(check bool) "names the fail-stop" true
            (Util.contains (Error.message e) "fail-stop"));
        Journal.close j;
        (* crash recovery: the torn tail is dropped, every acked entry
           replays *)
        let j2 = Journal.open_ ~dir Standard_schemas.odyssey in
        Alcotest.(check bool) "torn tail truncated" true
          (Journal.truncated_on_open j2 > 0);
        Alcotest.(check string) "acked state replays" acked
          (Test_journal.state (Journal.context j2));
        Alcotest.(check bool) "reopened journal is healthy" true
          (Journal.failed j2 = None);
        Journal.close j2);
    Alcotest.test_case "an fsync failure fail-stops the journal" `Quick
      (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let j =
          Journal.open_ ~sync_mode:Journal.Always ~dir
            Standard_schemas.odyssey
        in
        let ctx = Journal.context j in
        ignore (Engine.install ctx ~entity:E.stimuli ~label:"pre" stim_value);
        Fault.arm "journal.fsync" Fault.Fail;
        (match Engine.install ctx ~entity:E.stimuli ~label:"boom" stim_value with
        | _ -> Alcotest.fail "expected an injected fsync failure"
        | exception Fault.Injected "journal.fsync" -> ());
        (match Journal.sync j with
        | _ -> Alcotest.fail "expected a fail-stop refusal"
        | exception Journal.Journal_error e ->
          check_code "unavailable" "unavailable" e);
        Journal.close j;
        (* reopening clears the fail-stop and the acked prefix is
           intact; the interrupted entry's durability was never
           acknowledged either way *)
        let j2 = Journal.open_ ~dir Standard_schemas.odyssey in
        Alcotest.(check bool) "healthy after reopen" true
          (Journal.failed j2 = None);
        Alcotest.(check bool) "acked entry replayed" true
          (Util.contains (Test_journal.state (Journal.context j2)) "pre");
        ignore
          (Engine.install (Journal.context j2) ~entity:E.stimuli
             ~label:"again" stim_value);
        Journal.close j2);
  ]

(* ------------------------------------------------------------------ *)
(* Server overload and deadlines                                       *)
(* ------------------------------------------------------------------ *)

let shedding =
  [
    Alcotest.test_case
      "a full write queue sheds typed and shed writes never journal" `Slow
      (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~max_queue:2 ~db:dir ~socket
            Standard_schemas.odyssey
        in
        let n = 8 in
        let outcomes = Array.make n (Ok ()) in
        (* stall the writer (a slow disk) so the admission queue fills
           behind the job it is holding *)
        Fault.arm "server.writer_stall" (Fault.Delay 1.0);
        let trigger =
          Thread.create
            (fun () ->
              Client.with_client ~user:"trigger" ~socket @@ fun c ->
              ignore
                (Client.install c ~entity:E.stimuli ~label:"trigger"
                   stim_sexp))
            ()
        in
        Thread.delay 0.2 (* let the writer pick it up and stall *);
        let workers =
          List.init n (fun i ->
              Thread.create
                (fun () ->
                  outcomes.(i) <-
                    (Client.with_client ~user:(Printf.sprintf "w%d" i) ~socket
                     @@ fun c ->
                     match
                       Client.install c ~entity:E.stimuli
                         ~label:(Printf.sprintf "w%d" i) stim_sexp
                     with
                     | _ -> Ok ()
                     | exception Client.Client_error e -> Error e))
                ())
        in
        List.iter Thread.join workers;
        Thread.join trigger;
        let oks, sheds =
          Array.fold_left
            (fun (oks, sheds) -> function
              | Ok () -> (oks + 1, sheds)
              | Error e -> (oks, e :: sheds))
            (0, []) outcomes
        in
        Alcotest.(check bool) "someone was shed" true (sheds <> []);
        List.iter
          (fun e ->
            check_code "overloaded" "overloaded" e;
            Alcotest.(check bool) "shed is retryable" true e.Error.retryable;
            Alcotest.(check bool) "carries a backoff hint" true
              (e.Error.retry_after <> None))
          sheds;
        Server.stop t;
        Server.wait t;
        (* exactly the acked writes are on disk: a shed request was
           refused at admission, before anything could journal *)
        let t2 = Server.start ~db:dir ~socket Standard_schemas.odyssey in
        Client.with_client ~socket (fun c ->
            Alcotest.(check int) "acked writes replay, shed writes do not"
              (oks + 1)
              (List.length (Client.browse c (only E.stimuli))));
        Server.stop t2;
        Server.wait t2);
    Alcotest.test_case "a mutation past its deadline is dropped in the queue"
      `Slow (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fault.arm "server.writer_stall" (Fault.Delay 0.6);
        let trigger =
          Thread.create
            (fun () ->
              Client.with_client ~user:"trigger" ~socket @@ fun c ->
              ignore
                (Client.install c ~entity:E.stimuli ~label:"trigger"
                   stim_sexp))
            ()
        in
        Thread.delay 0.2;
        (* a 50ms budget spent entirely in the queue behind the stall;
           the retryable Timeout cannot be resent — the budget is gone *)
        (Client.with_client ~user:"hasty" ~deadline:0.05 ~retries:2 ~socket
         @@ fun c ->
         match Client.install c ~entity:E.stimuli ~label:"late" stim_sexp with
         | _ -> Alcotest.fail "expected a deadline miss"
         | exception Client.Client_error e ->
           check_code "timeout" "timeout" e;
           Alcotest.(check bool) "blames the deadline" true
             (Util.contains (Error.message e) "deadline"));
        Thread.join trigger;
        Server.stop t;
        Server.wait t;
        let t2 = Server.start ~db:dir ~socket Standard_schemas.odyssey in
        Client.with_client ~socket (fun c ->
            Alcotest.(check int) "the expired mutation never journaled" 1
              (List.length (Client.browse c (only E.stimuli))));
        Server.stop t2;
        Server.wait t2);
    Alcotest.test_case "an already-expired deadline is shed before dispatch"
      `Quick (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Server.wait t)
          (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.connect fd (Unix.ADDR_UNIX socket);
                (* a hand-rolled peer that keeps sending sexp frames
                   after a v8 hello: the server sniffs each frame and
                   answers binary — recv_response sniffs right back *)
                let rpc ?deadline_ms req =
                  Wire.send ?deadline_ms fd (Wire.request_to_sexp req);
                  match Wire.recv_response fd with
                  | Some (resp, _, _) -> resp
                  | None -> Alcotest.fail "connection dropped"
                in
                (match
                   rpc
                     (Wire.Hello
                        { user = "raw"; version = Wire.protocol_version })
                 with
                | Wire.Ok_unit -> ()
                | _ -> Alcotest.fail "hello refused");
                (* a zero-budget frame is expired by the time it parses *)
                (match rpc ~deadline_ms:0 Wire.Ping with
                | Wire.Error e ->
                  check_code "timeout" "timeout" e;
                  Alcotest.(check bool) "blames the deadline" true
                    (Util.contains (Error.message e) "deadline")
                | _ -> Alcotest.fail "expected a pre-dispatch shed");
                (* shedding left the connection and the server healthy *)
                match rpc Wire.Ping with
                | Wire.Ok_unit -> ()
                | _ -> Alcotest.fail "connection no longer serves")));
  ]

(* ------------------------------------------------------------------ *)
(* Client classification                                               *)
(* ------------------------------------------------------------------ *)

let classification =
  [
    Alcotest.test_case
      "a connection lost after send is ambiguous for mutations" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        Unix.mkdir dir 0o755;
        let socket = Filename.concat dir "fake.sock" in
        let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind srv (Unix.ADDR_UNIX socket);
        Unix.listen srv 1;
        (* a server that welcomes the client, swallows one request
           whole, then dies without answering: the mutation was fully
           sent, so its fate is unknowable *)
        let fake =
          Thread.create
            (fun () ->
              let fd, _ = Unix.accept srv in
              (match Wire.recv_request fd with
              | Some _ -> Wire.send_response Wire.Sexp fd Wire.Ok_unit
              | None -> ());
              ignore (Wire.recv_request fd);
              Unix.close fd)
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            Thread.join fake;
            Unix.close srv)
          (fun () ->
            let c = Client.connect ~retries:3 ~socket () in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                match
                  Client.install c ~entity:E.stimuli ~label:"maybe" stim_sexp
                with
                | _ -> Alcotest.fail "expected `Ambiguous_commit"
                | exception Client.Client_error e ->
                  (* retries:3, yet never resent: a resend could
                     double-apply a write that did commit *)
                  check_code "ambiguous-commit" "ambiguous-commit" e;
                  Alcotest.(check bool) "not retryable" false
                    e.Error.retryable)));
    Alcotest.test_case "a torn send is a safe retry, applied exactly once"
      `Quick (fun () ->
        with_faults @@ fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Server.wait t)
          (fun () ->
            Client.with_client ~retries:2 ~socket @@ fun c ->
            Client.ping c (* dial and hello before arming the fault *);
            (* the next frame dies 10 bytes in — a mid-frame disconnect.
               The request never fully left, so resending a mutation is
               safe, and the client does it transparently *)
            Fault.arm "wire.send" (Fault.Torn 10);
            ignore
              (Client.install c ~entity:E.stimuli ~label:"torn-send"
                 stim_sexp);
            Alcotest.(check int) "the fault fired" 1 (Fault.fired "wire.send");
            Alcotest.(check int) "applied exactly once" 1
              (List.length (Client.browse c (only E.stimuli)))));
    Alcotest.test_case "a pool surfaces `Ambiguous_commit, never resends it"
      `Quick (fun () ->
        Test_journal.with_dir @@ fun dir ->
        Unix.mkdir dir 0o755;
        let socket = Filename.concat dir "fake.sock" in
        let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind srv (Unix.ADDR_UNIX socket);
        Unix.listen srv 1;
        (* a fake primary: answers the pool's probe (hello + stat),
           swallows the next request whole, then dies *)
        let fake =
          Thread.create
            (fun () ->
              let fd, _ = Unix.accept srv in
              let rec serve () =
                match Wire.recv_request fd with
                | None -> ()
                | Some (req, _, _) -> (
                  match req with
                  | Wire.Hello _ ->
                    Wire.send_response Wire.Sexp fd Wire.Ok_unit;
                    serve ()
                  | Wire.Stat ->
                    Wire.send_response Wire.Binary fd
                      (Wire.Ok_stat
                         { st_role = "primary"; st_seq = 0; st_clock = 0;
                           st_instances = 0; st_records = 0;
                           st_store_tick = 0; st_history_tick = 0;
                           st_uptime_s = 0.0 });
                    serve ()
                  | _ -> () (* the mutation: received whole, unanswered *))
              in
              serve ();
              Unix.close fd)
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            Thread.join fake;
            Unix.close srv)
          (fun () ->
            let pool = Client.Pool.connect ~user:"amb" [ socket ] in
            Fun.protect
              ~finally:(fun () -> Client.Pool.close pool)
              (fun () ->
                match
                  Client.Pool.write pool (fun c ->
                      Client.install c ~entity:E.stimuli ~label:"maybe"
                        stim_sexp)
                with
                | _ -> Alcotest.fail "expected `Ambiguous_commit"
                | exception Client.Client_error e ->
                  (* not `Unavailable: the pool must not re-probe and
                     resend a write whose fate is unknown *)
                  check_code "ambiguous-commit" "ambiguous-commit" e)));
    Alcotest.test_case "result-typed variants route on the code" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop t;
            Server.wait t)
          (fun () ->
            Client.with_client ~socket @@ fun c ->
            (match Client.ping_r c with
            | Ok () -> ()
            | Error e -> Alcotest.failf "ping: %s" (Error.to_string e));
            match Client.trace_r c 999 with
            | Ok _ -> Alcotest.fail "expected an error result"
            | Error e ->
              Alcotest.(check bool) "mentions the instance" true
                (Util.contains (Error.message e) "999")));
  ]

(* ------------------------------------------------------------------ *)
(* Degraded pool and idempotent lifecycle                              *)
(* ------------------------------------------------------------------ *)

let lifecycle =
  [
    Alcotest.test_case "a pool with no primary degrades to follower reads"
      `Slow (fun () ->
        Test_replica.with_pair @@ fun ~p ~fl:_ ~pdir:_ ~fdir:_ ~psock ~fsock ->
        let pool = Client.Pool.connect ~user:"deg" [ psock; fsock ] in
        Fun.protect
          ~finally:(fun () -> Client.Pool.close pool)
          (fun () ->
            Alcotest.(check bool) "healthy at first" false
              (Client.Pool.degraded pool);
            (* the primary dies; the write re-probes, finds nobody
               writable, fails fast and degrades the pool *)
            Server.stop p;
            Server.wait p;
            (match
               Client.Pool.write pool (fun c ->
                   Client.install c ~entity:E.stimuli ~label:"w" stim_sexp)
             with
            | _ -> Alcotest.fail "expected `Unavailable"
            | exception Client.Client_error e ->
              check_code "unavailable" "unavailable" e;
              Alcotest.(check bool) "final: do not hammer a dead set" false
                e.Error.retryable);
            Alcotest.(check bool) "degraded" true (Client.Pool.degraded pool);
            (* reads keep flowing to the surviving follower *)
            Alcotest.(check string) "served by the follower" "follower"
              (Client.Pool.read pool (fun c ->
                   (Client.stat c).Wire.st_role))));
    Alcotest.test_case "close, shutdown and stop are idempotent" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed:Test_server.seed ~db:dir ~socket
            Standard_schemas.odyssey
        in
        let c = Client.connect ~socket () in
        Client.ping c;
        Client.close c;
        Client.close c (* a second close is a no-op *);
        Alcotest.(check bool) "closed" true (Client.closed c);
        Client.shutdown c (* a no-op on a closed client *);
        Server.stop t;
        Server.stop t (* a second stop is a no-op *);
        Server.wait t;
        Server.wait t (* and wait can be called again *));
  ]

let suite =
  [
    ("fault.grammar", grammar);
    ("fault.journal", journal_faults);
    ("fault.shedding", shedding);
    ("fault.classification", classification);
    ("fault.lifecycle", lifecycle);
  ]
