(* Tests for the observability library: span nesting and balance,
   counter aggregation, the sinks, and a golden check that a small
   engine run's Chrome-trace export is valid JSON carrying one complete
   duration event per executed invocation. *)

open Ddf
module Obs = Ddf_obs.Obs
module Sinks = Ddf_obs.Sinks
module Metrics = Ddf_obs.Metrics

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser: just enough to validate trace exports        *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Json_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Json_error (Printf.sprintf "%s at %d" m !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad unicode escape";
          pos := !pos + 4;
          Buffer.add_char buf '?';
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Jnum f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Jobj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Jobj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Jarr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Jobj fields -> List.assoc_opt key fields
  | _ -> None

let str_member key j =
  match member key j with Some (Jstr s) -> Some s | _ -> None

(* run [f] with a recording sink installed, returning (result, events) *)
let recording f =
  let sink, events = Sinks.memory () in
  Obs.set_sink sink;
  let finally () = Obs.clear_sink () in
  let x = Fun.protect ~finally f in
  (x, events ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let shape ev =
  ( (match ev.Obs.kind with
    | Obs.Begin -> "B"
    | Obs.End -> "E"
    | Obs.Complete _ -> "X"
    | Obs.Instant -> "i"
    | Obs.Sample _ -> "C"),
    ev.Obs.name )

let span_tests =
  [
    t "with_span nests and balances" (fun () ->
        let (), events =
          recording (fun () ->
              Obs.with_span "outer" (fun () ->
                  Obs.with_span "inner" (fun () -> ())))
        in
        check
          Alcotest.(list (pair string string))
          "event sequence"
          [ ("B", "outer"); ("B", "inner"); ("E", "inner"); ("E", "outer") ]
          (List.map shape events));
    t "with_span is balanced when the thunk raises" (fun () ->
        let (), events =
          recording (fun () ->
              try Obs.with_span "risky" (fun () -> raise Exit)
              with Exit -> ())
        in
        check
          Alcotest.(list (pair string string))
          "end emitted despite the exception"
          [ ("B", "risky"); ("E", "risky") ]
          (List.map shape events));
    t "timestamps are monotone" (fun () ->
        let (), events =
          recording (fun () ->
              Obs.with_span "a" (fun () -> Obs.instant "b"))
        in
        let ts = List.map (fun e -> e.Obs.ts_us) events in
        check Alcotest.bool "sorted" true (List.sort compare ts = ts));
    t "no sink means no events and plain results" (fun () ->
        Obs.clear_sink ();
        check Alcotest.bool "disabled" false (Obs.enabled ());
        check Alcotest.int "with_span is transparent" 42
          (Obs.with_span "nothing" (fun () -> 42)));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    t "counters aggregate" (fun () ->
        let reg = Metrics.create () in
        let c = Metrics.counter ~registry:reg "x" in
        Metrics.incr c;
        Metrics.incr ~by:4 c;
        check Alcotest.int "count" 5 (Metrics.count c);
        check Alcotest.bool "same handle on re-lookup" true
          (Metrics.counter ~registry:reg "x" == c));
    t "histograms record n/mean/min/max" (fun () ->
        let reg = Metrics.create () in
        let h = Metrics.histogram ~registry:reg "d" in
        List.iter (fun v -> Metrics.observe h v) [ 1.0; 3.0; 8.0 ];
        (match Metrics.snapshot reg with
        | [ Metrics.Histogram ("d", hs) ] ->
          check Alcotest.int "n" 3 hs.Metrics.hs_n;
          check (Alcotest.float 1e-9) "mean" 4.0 (Metrics.hs_mean hs);
          check (Alcotest.float 1e-9) "min" 1.0 hs.Metrics.hs_min;
          check (Alcotest.float 1e-9) "max" 8.0 hs.Metrics.hs_max
        | _ -> Alcotest.fail "unexpected snapshot"));
    t "empty histograms appear in snapshots with n=0" (fun () ->
        let reg = Metrics.create () in
        let _ = Metrics.histogram ~registry:reg "idle" in
        (match Metrics.snapshot reg with
        | [ Metrics.Histogram ("idle", hs) ] ->
          check Alcotest.int "n" 0 hs.Metrics.hs_n;
          check (Alcotest.float 1e-9) "min zeroed" 0.0 hs.Metrics.hs_min
        | _ -> Alcotest.fail "empty histogram omitted");
        match parse_json (Metrics.to_json reg) with
        | Jobj [ ("idle", Jobj fields) ] ->
          check Alcotest.bool "n = 0 in json" true
            (List.assoc_opt "n" fields = Some (Jnum 0.0))
        | _ -> Alcotest.fail "empty histogram missing from to_json");
    t "reset zeroes in place, handles stay valid" (fun () ->
        let reg = Metrics.create () in
        let c = Metrics.counter ~registry:reg "x" in
        Metrics.incr ~by:7 c;
        Metrics.reset reg;
        check Alcotest.int "zeroed" 0 (Metrics.count c);
        Metrics.incr c;
        check Alcotest.int "still counts" 1 (Metrics.count c));
    t "to_json is valid JSON" (fun () ->
        let reg = Metrics.create () in
        Metrics.incr ~by:3 (Metrics.counter ~registry:reg "runs");
        Metrics.set (Metrics.gauge ~registry:reg "load") 0.5;
        Metrics.observe (Metrics.histogram ~registry:reg "depth") 4.0;
        match parse_json (Metrics.to_json reg) with
        | Jobj fields ->
          check Alcotest.int "three metrics" 3 (List.length fields);
          check Alcotest.bool "counter value" true
            (List.assoc "runs" fields = Jnum 3.0)
        | _ -> Alcotest.fail "not an object");
    t "engine counters advance across a run" (fun () ->
        let before =
          Metrics.count (Metrics.counter "engine.executed")
        in
        let w, f, bindings = Test_exec.fig5_setup () in
        let run =
          Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings
        in
        check Alcotest.int "engine.executed grew by the run's stats"
          (before + run.Engine.stats.Engine.executed)
          (Metrics.count (Metrics.counter "engine.executed")));
  ]

(* ------------------------------------------------------------------ *)
(* Chrome-trace export of an engine run (the golden test)              *)
(* ------------------------------------------------------------------ *)

let engine_trace () =
  recording (fun () ->
      let w, f, bindings = Test_exec.fig5_setup () in
      let ctx = Workspace.ctx w in
      let r1 = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
      let r2 = Engine.execute ctx f.Standard_flows.f5_graph ~bindings in
      (r1, r2))

let chrome_tests =
  [
    t "chrome export is valid JSON with one X event per execution" (fun () ->
        let (r1, r2), events = engine_trace () in
        let doc = parse_json (Sinks.chrome_json_of_events events) in
        let evs =
          match member "traceEvents" doc with
          | Some (Jarr l) -> l
          | _ -> Alcotest.fail "no traceEvents array"
        in
        let engine_x =
          List.filter
            (fun e ->
              str_member "ph" e = Some "X" && str_member "cat" e = Some "engine")
            evs
        in
        let executions =
          r1.Engine.stats.Engine.executed + r1.Engine.stats.Engine.composed
        in
        check Alcotest.int "one complete duration event per execution"
          executions (List.length engine_x);
        (* every X event names its task entity and kind *)
        List.iter
          (fun e ->
            let kind =
              Option.bind (member "args" e) (str_member "kind")
            in
            check Alcotest.bool "kind is executed or composed" true
              (kind = Some "executed" || kind = Some "composed"))
          engine_x;
        let names = List.filter_map (str_member "name") engine_x in
        check Alcotest.bool "verification task traced" true
          (List.mem "verification" names);
        (* memo hits of the second run are instants tagged kind=memo *)
        let memos =
          List.filter
            (fun e ->
              str_member "ph" e = Some "i"
              && Option.bind (member "args" e) (str_member "kind")
                 = Some "memo")
            evs
        in
        check Alcotest.int "memo hits distinguishable from executions"
          r2.Engine.stats.Engine.memo_hits (List.length memos));
    t "begin/end events balance like a bracket language" (fun () ->
        let _, events = engine_trace () in
        let depth =
          List.fold_left
            (fun d e ->
              match e.Obs.kind with
              | Obs.Begin -> d + 1
              | Obs.End ->
                check Alcotest.bool "never negative" true (d > 0);
                d - 1
              | _ -> d)
            0 events
        in
        check Alcotest.int "balanced" 0 depth);
    t "tracing does not perturb the run" (fun () ->
        let (r1, _), _ = engine_trace () in
        let w, f, bindings = Test_exec.fig5_setup () in
        let r =
          Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings
        in
        check Alcotest.int "same executed count"
          r.Engine.stats.Engine.executed r1.Engine.stats.Engine.executed;
        check Alcotest.bool "same assignment" true
          (r.Engine.assignment = r1.Engine.assignment));
  ]

(* ------------------------------------------------------------------ *)
(* Schedule lanes and the other sinks                                  *)
(* ------------------------------------------------------------------ *)

let sink_tests =
  [
    t "schedule renders as per-machine chrome lanes" (fun () ->
        let w, f, bindings = Test_exec.fig5_setup () in
        let run =
          Engine.execute (Workspace.ctx w) f.Standard_flows.f5_graph ~bindings
        in
        let s =
          Parallel.schedule f.Standard_flows.f5_graph ~costs:run.Engine.costs
            ~machines:2
        in
        let doc = parse_json (Parallel.chrome_trace_of_schedule s) in
        let evs =
          match member "traceEvents" doc with
          | Some (Jarr l) -> l
          | _ -> Alcotest.fail "no traceEvents array"
        in
        let xs = List.filter (fun e -> str_member "ph" e = Some "X") evs in
        check Alcotest.int "one lane entry per scheduled invocation"
          (List.length s.Parallel.entries)
          (List.length xs);
        List.iter
          (fun e ->
            match member "tid" e with
            | Some (Jnum tid) ->
              check Alcotest.bool "lane within machine pool" true
                (tid >= 0.0 && tid < 2.0)
            | _ -> Alcotest.fail "no tid")
          xs;
        let lane_labels =
          List.filter (fun e -> str_member "ph" e = Some "M") evs
        in
        check Alcotest.int "machine lane names" 2 (List.length lane_labels));
    t "jsonl sink writes one valid JSON object per line" (fun () ->
        let path = Filename.temp_file "ddf_obs" ".jsonl" in
        Obs.set_sink (Sinks.to_file ~format:Sinks.Jsonl path);
        Obs.with_span ~cat:"test" "line" (fun () ->
            Obs.instant ~cat:"test" ~attrs:[ ("k", Obs.Str "v\"quoted\"") ]
              "escape me");
        Obs.clear_sink ();
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        Sys.remove path;
        List.iter
          (fun line ->
            match parse_json line with
            | Jobj _ -> ()
            | _ -> Alcotest.fail "line is not an object")
          !lines;
        (* span Begins also yield flow records; count the main events *)
        let mains =
          List.filter
            (fun line ->
              match parse_json line with
              | j -> str_member "cat" j <> Some "trace")
            !lines
        in
        check Alcotest.int "three events" 3 (List.length mains));
    t "text sink produces a line per event" (fun () ->
        let path = Filename.temp_file "ddf_obs" ".txt" in
        Obs.set_sink (Sinks.to_file ~format:Sinks.Text path);
        Obs.with_span "a" (fun () -> Obs.instant "b");
        Obs.clear_sink ();
        let ic = open_in path in
        let count = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr count
           done
         with End_of_file -> close_in ic);
        Sys.remove path;
        check Alcotest.int "three lines" 3 !count);
  ]

let suite =
  [
    ("obs.spans", span_tests);
    ("obs.metrics", metrics_tests);
    ("obs.chrome", chrome_tests);
    ("obs.sinks", sink_tests);
  ]
