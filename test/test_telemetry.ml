(* Telemetry: trace-context tokens and frame headers, histogram
   quantile accuracy against a sorted-array oracle, the Metrics wire
   verb under version negotiation, and end-to-end distributed trace
   assembly — a retried client write, the primary's dispatch/writer
   spans and the follower's apply all sharing one trace id inside a
   single recording. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f
let seed = Test_server.seed

let stim_sexp =
  Codec.value_to_sexp (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))

(* Record every event emitted while [f] runs. *)
let recording f =
  let sink, events = Obs_sinks.memory () in
  Obs.set_sink sink;
  Fun.protect ~finally:Obs.clear_sink f;
  events ()

(* ------------------------------------------------------------------ *)
(* Trace-context tokens and frame headers                              *)
(* ------------------------------------------------------------------ *)

let hex_char =
  QCheck.Gen.oneofl
    [ '0'; '1'; '2'; '3'; '4'; '5'; '6'; '7'; '8'; '9'; 'a'; 'b'; 'c'; 'd';
      'e'; 'f' ]

let ctx_gen =
  QCheck.Gen.map2
    (fun trace_id sid ->
      { Obs.trace_id; Obs.span_id = sid + 1; Obs.parent_id = 0 })
    (QCheck.Gen.string_size ~gen:hex_char (QCheck.Gen.return 16))
    (QCheck.Gen.int_bound ((1 lsl 59) - 1))

let ctx_arb =
  QCheck.make
    ~print:(fun c -> Obs.span_ctx_to_token c)
    ctx_gen

let token_roundtrip =
  QCheck.Test.make ~name:"a span context round-trips through its token"
    ~count:500 ctx_arb (fun ctx ->
      Obs.span_ctx_of_token (Obs.span_ctx_to_token ctx) = Some ctx)

(* The wire-level version: the context rides the ddf1 frame header
   next to (and independently of) the deadline token. *)
let header_roundtrip =
  QCheck.Test.make ~name:"a span context round-trips through a frame header"
    ~count:100
    QCheck.(pair ctx_arb (option (int_bound 100_000)))
    (fun (ctx, deadline_ms) ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          Unix.close a;
          Unix.close b)
        (fun () ->
          Wire.send ?deadline_ms ~trace:ctx a
            (Wire.request_to_sexp Wire.Ping);
          match Wire.recv_meta b with
          | None -> false
          | Some (sexp, meta) ->
            (match Wire.request_of_sexp sexp with
            | Wire.Ping -> true
            | _ -> false)
            && meta.Wire.fm_deadline_ms = deadline_ms
            && meta.Wire.fm_trace = Some ctx))

let malformed_tokens () =
  List.iter
    (fun tok ->
      check Alcotest.bool (Printf.sprintf "%S is rejected" tok) true
        (Obs.span_ctx_of_token tok = None))
    [
      "";
      "t=";
      "t=abc";
      (* trace id too short *)
      "t=0123456789abcde.1";
      (* span id zero *)
      "t=0123456789abcdef.0";
      (* non-hex characters *)
      "t=0123456789abcdeg.1";
      "t=0123456789abcdef.1x";
      (* missing the separator *)
      "t=0123456789abcdef";
      "x=0123456789abcdef.1";
    ]

let bare_frames_still_parse () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      (* no deadline, no trace: the v4 header shape *)
      Wire.send a (Wire.request_to_sexp Wire.Ping);
      (match Wire.recv_meta b with
      | Some (_, meta) ->
        check Alcotest.bool "no deadline" true (meta.Wire.fm_deadline_ms = None);
        check Alcotest.bool "no trace" true (meta.Wire.fm_trace = None)
      | None -> Alcotest.fail "eof on a bare frame");
      (* deadline without trace still parses positionally *)
      Wire.send ~deadline_ms:42 a (Wire.request_to_sexp Wire.Ping);
      match Wire.recv_meta b with
      | Some (_, meta) ->
        check Alcotest.bool "deadline alone" true (meta.Wire.fm_deadline_ms = Some 42);
        check Alcotest.bool "still no trace" true (meta.Wire.fm_trace = None)
      | None -> Alcotest.fail "eof on a deadline frame")

let metrics_codec_roundtrip () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter ~registry:reg "c1");
  Metrics.set (Metrics.gauge ~registry:reg "g1") 2.5;
  let h = Metrics.histogram ~registry:reg "h1" in
  List.iter (Metrics.observe h) [ 1.0; 10.0; 100.0 ];
  ignore (Metrics.histogram ~registry:reg "h0" : Metrics.histogram);
  let ms = Metrics.snapshot reg in
  check Alcotest.bool "snapshot includes the empty histogram" true
    (List.exists (fun m -> Metrics.metric_name m = "h0") ms);
  match
    Wire.response_of_sexp
      (Sexp.of_string (Sexp.to_string (Wire.response_to_sexp (Wire.Ok_metrics ms))))
  with
  | Wire.Ok_metrics ms' ->
    check Alcotest.bool "metrics round-trip the response codec exactly" true (ms = ms')
  | _ -> Alcotest.fail "Ok_metrics decoded as something else"

(* ------------------------------------------------------------------ *)
(* Quantiles vs a sorted-array oracle                                  *)
(* ------------------------------------------------------------------ *)

let quantile_oracle () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "oracle" in
  let rng = Random.State.make [| 0xbeef |] in
  let n = 5000 in
  (* log-uniform over ~5 decades: every octave of the bucket table
     gets traffic *)
  let values =
    Array.init n (fun _ -> Float.exp (Random.State.float rng 11.0))
  in
  Array.iter (Metrics.observe h) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let want = sorted.(min (n - 1) (int_of_float (q *. float_of_int n))) in
      let got = Metrics.quantile h q in
      let rel = Float.abs (got -. want) /. want in
      if rel > 0.15 then
        Alcotest.failf "q%.2f: got %g, oracle %g (relative error %.3f)" q got
          want rel)
    [ 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* The Metrics verb under version negotiation                          *)
(* ------------------------------------------------------------------ *)

let metrics_verb_v4 () =
  Test_server.with_server @@ fun _t ~dir:_ ~socket ->
  (* a v4 peer (the previous protocol revision) is accepted and can
     use the new verb *)
  Client.with_client ~user:"v4" ~version:4 ~socket @@ fun c ->
  Client.ping c;
  let ms = Client.metrics c in
  let has name = List.exists (fun m -> Metrics.metric_name m = name) ms in
  check Alcotest.bool "server.requests counter present" true (has "server.requests");
  match
    List.find_opt
      (function
        | Metrics.Histogram ("server.request_us", _) -> true | _ -> false)
      ms
  with
  | Some (Metrics.Histogram (_, h)) ->
    check Alcotest.bool "request latency has samples" true (h.Metrics.hs_n > 0);
    check Alcotest.bool "quantiles are ordered" true
      (h.Metrics.hs_p50 <= h.Metrics.hs_p90
      && h.Metrics.hs_p90 <= h.Metrics.hs_p99
      && h.Metrics.hs_p99 <= h.Metrics.hs_max)
  | _ -> Alcotest.fail "no server.request_us histogram in the snapshot"

let too_old_client_refused () =
  Test_server.with_server @@ fun _t ~dir:_ ~socket ->
  match Client.connect ~user:"v3" ~version:3 ~socket () with
  | c ->
    Client.close c;
    Alcotest.fail "a v3 hello was accepted"
  | exception Client.Client_error e ->
    check Alcotest.bool "names the accepted range" true
      (Util.contains (Error.message e) "accepts")

(* ------------------------------------------------------------------ *)
(* Cross-process trace assembly                                        *)
(* ------------------------------------------------------------------ *)

(* One recording over an in-process client + primary + follower: the
   client's root span context travels the frame header into the
   primary's dispatch, through the writer queue into the journal, and
   on the replication stream into the follower's apply — every Begin
   along the way carries the same trace id.  A stalled writer and a
   one-slot queue force a shed on the first attempt, so the retry
   path is part of the assembled trace too. *)
let trace_assembly () =
  Test_journal.with_dir @@ fun root ->
  Unix.mkdir root 0o755;
  let pdir = Filename.concat root "p" and fdir = Filename.concat root "f" in
  let psock = Filename.concat root "p.sock"
  and fsock = Filename.concat root "f.sock" in
  let p =
    Server.start ~seed ~max_queue:1 ~db:pdir ~socket:psock
      Standard_schemas.odyssey
  in
  let fl =
    Server.start ~follow:psock ~db:fdir ~socket:fsock Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      (try Server.stop fl; Server.wait fl with _ -> ());
      (try Server.stop p; Server.wait p with _ -> ()))
  @@ fun () ->
  let events =
    recording @@ fun () ->
    Obs.with_span ~cat:"test" "test.root" @@ fun () ->
    Client.with_client ~user:"traced" ~retries:8 ~socket:psock @@ fun c ->
    (* stall the writer on an untraced job and fill the single queue
       slot so the traced install is shed (retryably) at least once;
       each stage is confirmed by polling process-global state rather
       than by sleeping, so the sequence survives a loaded machine *)
    let await what n cond =
      let rec go n =
        if not (cond ()) then begin
          if n = 0 then Alcotest.fail (what ^ ": never happened");
          Thread.delay 0.01;
          go (n - 1)
        end
      in
      go n
    in
    (* the follower's writer shares the process-global fault registry:
       let it finish applying the seed first, so the armed stall is
       consumed by the primary's writer and not by a catch-up batch *)
    Client.with_client ~user:"sync" ~socket:fsock (fun cf ->
        await "initial catch-up" 500 (fun () ->
            let sp = Client.stat c and sf = Client.stat cf in
            sp.Wire.st_seq > 0 && sp.Wire.st_seq = sf.Wire.st_seq));
    let fired0 = Fault.fired "server.writer_stall" in
    Fault.arm ~times:1 "server.writer_stall" (Fault.Delay 1.0);
    let trigger =
      Thread.create
        (fun () ->
          Client.with_client ~user:"trigger" ~socket:psock @@ fun c2 ->
          ignore
            (Client.install c2 ~entity:E.stimuli ~label:"trigger" stim_sexp))
        ()
    in
    (* the writer drained the trigger job and is inside the stall *)
    await "writer stall" 500 (fun () ->
        Fault.fired "server.writer_stall" > fired0);
    let muts0 = Metrics.count (Metrics.counter "server.mutations") in
    let filler =
      Thread.create
        (fun () ->
          Client.with_client ~user:"filler" ~socket:psock @@ fun c2 ->
          ignore
            (Client.install c2 ~entity:E.stimuli ~label:"filler" stim_sexp))
        ()
    in
    (* the filler's install was admitted: it holds the one queue slot *)
    await "filler admission" 500 (fun () ->
        Metrics.count (Metrics.counter "server.mutations") > muts0);
    Thread.delay 0.02 (* counter increments just before the enqueue *);
    ignore (Client.install c ~entity:E.stimuli ~label:"traced" stim_sexp);
    Thread.join trigger;
    Thread.join filler;
    (* hold the recording open until the follower has applied it all *)
    Client.with_client ~user:"reader" ~socket:fsock @@ fun cf ->
    let caught_up () =
      let sp = Client.stat c and sf = Client.stat cf in
      sp.Wire.st_seq > 0 && sp.Wire.st_seq = sf.Wire.st_seq
    in
    let rec wait n =
      if not (caught_up ()) then begin
        if n = 0 then Alcotest.fail "follower never caught up";
        Thread.delay 0.05;
        wait (n - 1)
      end
    in
    wait 200
  in
  (* the trigger/filler clients trace too (fresh roots on their own
     threads), so anchor on the test's root span, not on whichever
     client.request was recorded first *)
  let root_trace =
    match
      List.find_opt
        (fun ev -> ev.Obs.name = "test.root" && ev.Obs.kind = Obs.Begin)
        events
    with
    | Some { Obs.span = Some c; _ } -> c.Obs.trace_id
    | _ -> Alcotest.fail "no test.root span was recorded"
  in
  let begins_in_trace name =
    List.length
      (List.filter
         (fun ev ->
           ev.Obs.name = name
           && ev.Obs.kind = Obs.Begin
           &&
           match ev.Obs.span with
           | Some c -> c.Obs.trace_id = root_trace
           | None -> false)
         events)
  in
  check Alcotest.bool "the shed attempt produced a client.retry instant" true
    (List.exists
       (fun ev ->
         ev.Obs.name = "client.retry"
         &&
         match ev.Obs.span with
         | Some c -> c.Obs.trace_id = root_trace
         | None -> false)
       events);
  check Alcotest.bool "a traced client.request was recorded" true
    (begins_in_trace "client.request" >= 1);
  check Alcotest.bool "more than one attempt joined the trace" true
    (begins_in_trace "client.attempt" >= 2);
  check Alcotest.bool "server dispatches joined the trace" true
    (begins_in_trace "server.dispatch" >= 1);
  check Alcotest.bool "the writer job joined the trace" true
    (begins_in_trace "server.write_job" >= 1);
  check Alcotest.bool "the follower apply joined the trace" true
    (begins_in_trace "follower.apply" >= 1)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "telemetry.context",
      [
        QCheck_alcotest.to_alcotest token_roundtrip;
        QCheck_alcotest.to_alcotest header_roundtrip;
        t "malformed tokens are rejected" malformed_tokens;
        t "bare and deadline-only frames still parse" bare_frames_still_parse;
        t "metrics snapshots round-trip the response codec"
          metrics_codec_roundtrip;
      ] );
    ( "telemetry.quantiles",
      [ t "p50/p90/p99 track a sorted-array oracle" quantile_oracle ] );
    ( "telemetry.versioning",
      [
        t "a v4 client is accepted and can fetch metrics" metrics_verb_v4;
        t "a v3 client is refused with the accepted range"
          too_old_client_refused;
      ] );
    ( "telemetry.assembly",
      [
        t "client retry, primary spans and follower apply share one trace"
          trace_assembly;
      ] );
  ]
