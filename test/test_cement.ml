(* Tiered cold storage and streaming bootstrap: cement segment
   round-trips and torn-tail recovery, the journal's watermark
   behaviour (typed [entries_since] boundary, cold frame reads,
   payload eviction with reload-from-cement), the compaction
   crash-window repair behind the [journal.dir_fsync] fault point, and
   the v7 streamed snapshot paths (feed version matrix, late-follower
   bootstrap, client export). *)

open Ddf
module E = Standard_schemas.E

let with_dir = Test_journal.with_dir
let seed = Test_server.seed

let frames_for lo hi =
  List.init
    (hi - lo + 1)
    (fun i -> (lo + i, Printf.sprintf "(frame %d payload-%d)" (lo + i) (lo + i)))

let payload_of seq = Printf.sprintf "(frame %d payload-%d)" seq seq

(* The session [user] header is per-connection identity, not state:
   the monolithic snapshot is saved under the subscriber's login, the
   streamed one under whoever wrote last (see [Test_journal.state]). *)
let normalize_user s =
  String.split_on_char '\n' s
  |> List.map (fun line ->
         if String.length line >= 7 && String.sub line 0 7 = " (user " then
           " (user _)"
         else line)
  |> String.concat "\n"

let segments =
  [
    Alcotest.test_case "fold, read, iterate, reopen" `Quick (fun () ->
        with_dir @@ fun dir ->
        let c = Cement.open_ ~dir in
        Cement.fold c ~first:1 (frames_for 1 3);
        Cement.fold c ~first:4 (frames_for 4 6);
        Alcotest.(check int) "segments" 2 (Cement.segment_count c);
        Alcotest.(check int) "first" 1 (Cement.first_seq c);
        Alcotest.(check int) "last" 6 (Cement.last_seq c);
        Alcotest.(check bool) "bytes" true (Cement.total_bytes c > 0);
        Alcotest.(check (option string)) "read" (Some (payload_of 5))
          (Cement.read c 5);
        Alcotest.(check (option string)) "below window" None (Cement.read c 0);
        Alcotest.(check (option string)) "above window" None (Cement.read c 7);
        let seen = ref [] in
        Cement.iter_range c ~from:2 ~upto:5 (fun seq payload ->
            Alcotest.(check string) "iter payload" (payload_of seq) payload;
            seen := seq :: !seen);
        Alcotest.(check (list int)) "iter window" [ 2; 3; 4; 5 ]
          (List.rev !seen);
        Cement.close c;
        (* a fresh open sees the same store *)
        let c2 = Cement.open_ ~dir in
        Alcotest.(check int) "reopened last" 6 (Cement.last_seq c2);
        Alcotest.(check int) "no torn tail" 0 (Cement.truncated_on_open c2);
        Alcotest.(check (option string)) "reopened read" (Some (payload_of 2))
          (Cement.read c2 2);
        Cement.close c2);
    Alcotest.test_case "refolding cemented seqnos is idempotent, gaps refused"
      `Quick (fun () ->
        with_dir @@ fun dir ->
        let c = Cement.open_ ~dir in
        Cement.fold c ~first:1 (frames_for 1 4);
        (* a crash between fold and the watermark write retries with an
           overlapping window: the cemented prefix is skipped *)
        Cement.fold c ~first:1 (frames_for 1 6);
        Alcotest.(check int) "extended" 6 (Cement.last_seq c);
        Alcotest.(check (option string)) "old frame intact"
          (Some (payload_of 3)) (Cement.read c 3);
        Alcotest.(check (option string)) "new frame" (Some (payload_of 6))
          (Cement.read c 6);
        (match Cement.fold c ~first:9 (frames_for 9 10) with
        | () -> Alcotest.fail "expected a seqno-gap refusal"
        | exception Error.Ddf_error _ -> ());
        Cement.close c);
    Alcotest.test_case "a torn tail on the newest segment truncates on open"
      `Quick (fun () ->
        with_dir @@ fun dir ->
        let c = Cement.open_ ~dir in
        Cement.fold c ~first:1 (frames_for 1 3);
        Cement.fold c ~first:4 (frames_for 4 6);
        Cement.close c;
        (* cut the newest segment mid-frame, like a crash while the
           file system reordered writes *)
        let path = Filename.concat dir "segment-000000000004-000000000006.ddf" in
        let size = (Unix.stat path).Unix.st_size in
        Unix.truncate path (size - 5);
        let c2 = Cement.open_ ~dir in
        Alcotest.(check bool) "torn bytes reported" true
          (Cement.truncated_on_open c2 > 0);
        Alcotest.(check int) "window shrank to the good prefix" 5
          (Cement.last_seq c2);
        Alcotest.(check (option string)) "survivor reads" (Some (payload_of 5))
          (Cement.read c2 5);
        Alcotest.(check (option string)) "torn frame gone" None
          (Cement.read c2 6);
        (* the store extends contiguously from the surviving watermark *)
        Cement.fold c2 ~first:6 (frames_for 6 7);
        Alcotest.(check (option string)) "refolded" (Some (payload_of 6))
          (Cement.read c2 6);
        Cement.close c2);
  ]

let journal =
  [
    Alcotest.test_case "entries_since is typed exactly at the watermark"
      `Quick (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (Test_journal.activity ctx 2);
        Journal.compact j;
        let base = Journal.base_seq j in
        Alcotest.(check bool) "compacted" true (base > 0);
        (match Journal.cement_stats j with
        | Some (_, _, first, last) ->
          Alcotest.(check int) "cement starts at 1" 1 first;
          Alcotest.(check int) "cement reaches the watermark" base last
        | None -> Alcotest.fail "nothing cemented");
        ignore (Test_journal.activity ~seed:11 ctx 1);
        (* exactly at the watermark: the wal tail suffices *)
        (match Journal.entries_since j base with
        | Journal.Frames ((s0, _) :: _) ->
          Alcotest.(check int) "tail starts past the base" (base + 1) s0
        | Journal.Frames [] -> Alcotest.fail "expected a non-empty tail"
        | Journal.Snapshot_needed -> Alcotest.fail "at the watermark is servable");
        (* one below: those frames are folded away, resync required *)
        (match Journal.entries_since j (base - 1) with
        | Journal.Snapshot_needed -> ()
        | Journal.Frames _ -> Alcotest.fail "below the watermark needs a snapshot");
        (* ...but the cemented history still reads by seqno *)
        Alcotest.(check bool) "cold frame at the watermark" true
          (Journal.cold_frame j base <> None);
        Alcotest.(check bool) "cold frame at 1" true
          (Journal.cold_frame j 1 <> None);
        Alcotest.(check (option string)) "wal seqnos are not cold" None
          (Journal.cold_frame j (base + 1));
        Journal.close j);
    Alcotest.test_case "evicted payloads reload from cement" `Quick (fun () ->
        with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (Test_journal.activity ctx 3);
        let reference = Test_journal.state ctx in
        Journal.compact j;
        let evicted = Journal.evict_cold j in
        Alcotest.(check bool) "something evicted" true (evicted > 0);
        let store = ctx.Engine.store in
        let cold =
          List.filter
            (fun iid -> not (Store.payload_resident store iid))
            (Store.all_instances store)
        in
        Alcotest.(check int) "eviction count matches residency" evicted
          (List.length cold);
        let loads () = Metrics.count (Metrics.counter "store.cold_loads") in
        let l0 = loads () in
        (* reading the full durable surface forces every payload back *)
        Alcotest.(check string) "state intact after reload" reference
          (Test_journal.state ctx);
        Alcotest.(check bool) "reloads counted" true (loads () > l0);
        List.iter
          (fun iid ->
            Alcotest.(check bool) "re-promoted" true
              (Store.payload_resident store iid))
          cold;
        Journal.close j);
    Alcotest.test_case "a crash between base write and wal truncation repairs"
      `Quick (fun () ->
        with_dir @@ fun dir ->
        Fun.protect ~finally:Fault.reset @@ fun () ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (Test_journal.activity ctx 2);
        Journal.sync j;
        let seq0 = Journal.seq j in
        let reference = Test_journal.state ctx in
        (* die exactly between the snapshot/base renames and the wal
           truncation: the cement fold and both renames are on disk,
           the redundant wal is still in place *)
        Fault.arm "journal.dir_fsync" Fault.Fail;
        (match Journal.compact j with
        | () -> Alcotest.fail "expected the injected crash"
        | exception Fault.Injected _ -> ());
        Alcotest.(check int) "fired once" 1 (Fault.fired "journal.dir_fsync");
        Journal.close j;
        (* recovery must not double-count the leftover frames into the
           seqno line (seq = 2 * base) — replay proves the wal redundant
           and the cement watermark sits at the base, so the interrupted
           truncation completes *)
        let j2 = Journal.open_ ~dir Standard_schemas.odyssey in
        Alcotest.(check int) "seqno line repaired" seq0 (Journal.seq j2);
        Alcotest.(check int) "base at the crash point" seq0
          (Journal.base_seq j2);
        Alcotest.(check int) "wal emptied" 0 (Journal.entries_since_snapshot j2);
        Alcotest.(check string) "state survived" reference
          (Test_journal.state (Journal.context j2));
        (* and the repaired journal keeps journaling on the same line *)
        ignore (Test_journal.activity ~seed:13 (Journal.context j2) 1);
        Alcotest.(check bool) "writes continue" true (Journal.seq j2 > seq0);
        let after = Test_journal.state (Journal.context j2) in
        Journal.close j2;
        Test_journal.reopened_equals dir after);
  ]

(* A primary with enough compacted history that a fresh subscriber's
   catch-up point predates the watermark. *)
let with_deep_primary f =
  with_dir @@ fun root ->
  Unix.mkdir root 0o755;
  let pdir = Filename.concat root "p" in
  let psock = Filename.concat root "p.sock" in
  let p =
    Server.start ~seed ~db:pdir ~socket:psock Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      try Server.stop p; Server.wait p with _ -> ())
    (fun () ->
      Client.with_client ~user:"w" ~socket:psock (fun cp ->
          ignore (Test_server.perf_run cp (Eda.Circuits.c17 ()) "c17");
          Client.compact cp);
      f ~root ~p ~pdir ~psock)

let bootstrap =
  [
    Alcotest.test_case "feed version matrix: v6 monolithic, v7 streamed"
      `Quick (fun () ->
        with_deep_primary @@ fun ~root ~p:_ ~pdir:_ ~psock ->
        (* a downlevel subscriber gets the whole state as one string *)
        let f6 = Replica.Feed.connect ~version:6 ~socket:psock ~since:0 () in
        let seq6, data6 =
          match Replica.Feed.next f6 with
          | Replica.Feed.Snapshot { seq; data } -> (seq, data)
          | _ -> Alcotest.fail "v6 expected a monolithic snapshot"
        in
        Replica.Feed.close f6;
        Alcotest.(check bool) "snapshot covers history" true (seq6 > 0);
        (* a current subscriber gets the same bytes as a spooled file,
           never materialised in memory *)
        let f7 = Replica.Feed.connect ~spool:root ~socket:psock ~since:0 () in
        (match Replica.Feed.next f7 with
        | Replica.Feed.Snapshot_file { seq; path } ->
          Alcotest.(check int) "same watermark" seq6 seq;
          let ic = open_in_bin path in
          let spooled =
            really_input_string ic (in_channel_length ic)
          in
          close_in ic;
          Sys.remove path;
          Alcotest.(check string) "same state either way"
            (normalize_user data6) (normalize_user spooled)
        | _ -> Alcotest.fail "v7 expected a streamed snapshot");
        Replica.Feed.close f7);
    Alcotest.test_case "a late follower bootstraps by streaming" `Quick
      (fun () ->
        with_deep_primary @@ fun ~root ~p ~pdir:_ ~psock ->
        let streamed () =
          Metrics.count (Metrics.counter "replica.snapshots_streamed")
        in
        let resyncs () =
          Metrics.count (Metrics.counter "journal.snapshot_stream_resyncs")
        in
        let s0 = streamed () and r0 = resyncs () in
        let fdir = Filename.concat root "f" in
        let fsock = Filename.concat root "f.sock" in
        let fl =
          Server.start ~follow:psock ~db:fdir ~socket:fsock
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            try Server.stop fl; Server.wait fl with _ -> ())
          (fun () ->
            (Client.with_client ~socket:psock @@ fun cp ->
             Client.with_client ~socket:fsock @@ fun cf ->
             Test_replica.wait_until ~what:"streamed bootstrap"
               (Test_replica.caught_up cp cf));
            Alcotest.(check bool) "primary streamed a snapshot" true
              (streamed () > s0);
            (* exactly one resync: the follower lands past the
               watermark and never re-requests pre-watermark frames *)
            Alcotest.(check int) "one streamed resync" (r0 + 1) (resyncs ());
            Test_replica.assert_converged ~p ~fl ~fdir));
    Alcotest.test_case "snapshot-export streams to a client file" `Quick
      (fun () ->
        with_deep_primary @@ fun ~root ~p:_ ~pdir ~psock ->
        let out = Filename.concat root "export.ddf" in
        (Client.with_client ~user:"op" ~socket:psock @@ fun c ->
         let seq, bytes = Client.snapshot_export c ~out in
         Alcotest.(check int) "export covers everything" seq
           (Client.stat c).Wire.st_seq;
         Alcotest.(check int) "byte count verified" bytes
           (Unix.stat out).Unix.st_size;
         (* the exported bytes are exactly the primary's snapshot *)
         let slurp path =
           let ic = open_in_bin path in
           let s = really_input_string ic (in_channel_length ic) in
           close_in ic;
           s
         in
         Alcotest.(check string) "snapshot bytes"
           (slurp (Filename.concat pdir "snapshot.ddf"))
           (slurp out);
         (* the file is a loadable workspace on its own *)
         let session = Persist.load_file Standard_schemas.odyssey out in
         Alcotest.(check bool) "export parses" true
           (Store.instance_count (Session.context session).Engine.store > 0));
        (* a pre-v7 negotiation is refused with a typed error *)
        let c6 = Client.connect ~version:6 ~socket:psock () in
        Fun.protect ~finally:(fun () -> try Client.close c6 with _ -> ())
        @@ fun () ->
        match Client.snapshot_export c6 ~out:(out ^ ".v6") with
        | _ -> Alcotest.fail "expected a downlevel refusal"
        | exception Client.Client_error e ->
          Alcotest.(check bool) "names the version floor" true
            (Util.contains (Error.message e) "v7"));
  ]

let suite =
  [
    ("cement.segments", segments);
    ("cement.journal", journal);
    ("cement.bootstrap", bootstrap);
  ]
