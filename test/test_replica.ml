(* Journal-shipping replication: follower convergence, write
   rejection, catch-up through primary compaction, promotion after a
   primary failure, replication lag reporting, client reconnect and
   pool failover, protocol-version negotiation. *)

open Ddf
module E = Standard_schemas.E

let seed = Test_server.seed

let rec wait_until ?(timeout = 10.0) ?(what = "condition") f =
  if not (f ()) then
    if timeout <= 0.0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      wait_until ~timeout:(timeout -. 0.02) ~what f
    end

(* A primary/follower pair over one scratch root.  [f] gets both
   server handles and the paths; stop order in the cleanup is
   follower-first so the follower never spins reconnecting. *)
let with_pair ?compact_every f =
  Test_journal.with_dir @@ fun root ->
  Unix.mkdir root 0o755;
  let pdir = Filename.concat root "p" and fdir = Filename.concat root "f" in
  let psock = Filename.concat root "p.sock"
  and fsock = Filename.concat root "f.sock" in
  let p =
    Server.start ~seed ?compact_every ~db:pdir ~socket:psock
      Standard_schemas.odyssey
  in
  let fl =
    Server.start ~follow:psock ~db:fdir ~socket:fsock Standard_schemas.odyssey
  in
  Fun.protect
    ~finally:(fun () ->
      (try Server.stop fl; Server.wait fl with _ -> ());
      (try Server.stop p; Server.wait p with _ -> ()))
    (fun () -> f ~p ~fl ~pdir ~fdir ~psock ~fsock)

let caught_up cp cf () =
  let sp = Client.stat cp and sf = Client.stat cf in
  sp.Wire.st_seq > 0 && sp.Wire.st_seq = sf.Wire.st_seq

(* Stop both daemons and compare the whole durable surface — store,
   history, meta-data, logical clock — plus the follower's own replay. *)
let assert_converged ~p ~fl ~fdir =
  Server.stop fl;
  Server.wait fl;
  Server.stop p;
  Server.wait p;
  let want = Test_journal.state (Server.context p) in
  Alcotest.(check string) "follower state equals primary"
    want
    (Test_journal.state (Server.context fl));
  (* the follower's journal is itself crash-safe: a fresh process
     replaying its directory sees the same database *)
  Test_journal.reopened_equals fdir want

let convergence =
  [
    Alcotest.test_case "a follower converges and serves reads" `Quick
      (fun () ->
        with_pair @@ fun ~p ~fl ~pdir:_ ~fdir ~psock ~fsock ->
        Client.with_client ~user:"writer" ~socket:psock @@ fun cp ->
        Client.with_client ~user:"reader" ~socket:fsock @@ fun cf ->
        let nl_iid, results = Test_server.perf_run cp (Eda.Circuits.c17 ()) "c17" in
        Alcotest.(check bool) "ran" true (results <> []);
        wait_until ~what:"follower catch-up" (caught_up cp cf);
        (* the read surface is served by the follower itself *)
        Alcotest.(check string) "role" "follower" (Client.stat cf).Wire.st_role;
        let rows = Client.browse cf Test_server.no_filter in
        Alcotest.(check bool) "browse sees the replicated store" true
          (List.exists (fun r -> r.Wire.row_iid = nl_iid) rows);
        Alcotest.(check bool) "trace renders on the follower" true
          (Util.contains (Client.trace cf (List.hd results)) "performance");
        Alcotest.(check bool) "uses chains on the follower" true
          (List.mem (List.hd results) (Client.uses cf nl_iid));
        assert_converged ~p ~fl ~fdir);
    Alcotest.test_case "a follower rejects writes, allows local compaction"
      `Quick (fun () ->
        with_pair @@ fun ~p:_ ~fl:_ ~pdir:_ ~fdir:_ ~psock ~fsock ->
        Client.with_client ~socket:psock @@ fun cp ->
        Client.with_client ~socket:fsock @@ fun cf ->
        wait_until ~what:"seed catch-up" (caught_up cp cf);
        (match
           Client.install cf ~entity:E.stimuli ~label:"no"
             (Codec.value_to_sexp
                (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])))
         with
        | _ -> Alcotest.fail "expected a follower write rejection"
        | exception Client.Client_error e ->
          Alcotest.(check bool) "names the primary" true
            (Util.contains (Error.message e) "read-only follower"
            && Util.contains (Error.message e) psock));
        (* local journal folding is not a logical write *)
        Client.compact cf);
    Alcotest.test_case "replication lag is reported and gauged" `Quick
      (fun () ->
        with_pair @@ fun ~p:_ ~fl:_ ~pdir:_ ~fdir:_ ~psock ~fsock ->
        Client.with_client ~socket:psock @@ fun cp ->
        Client.with_client ~socket:fsock @@ fun cf ->
        ignore (Test_server.perf_run cp (Eda.Circuits.c17 ()) "c17");
        wait_until ~what:"follower catch-up" (caught_up cp cf);
        let seq = (Client.stat cp).Wire.st_seq in
        wait_until ~what:"acks to drain" (fun () ->
            match Client.lag cp with
            | _, [ row ] -> row.Wire.lag_acked = seq
            | _ -> false);
        let primary_seq, rows = Client.lag cp in
        Alcotest.(check int) "primary seq" seq primary_seq;
        (match rows with
        | [ row ] ->
          Alcotest.(check int) "acked through the head" seq row.Wire.lag_acked;
          Alcotest.(check bool) "sent through the head" true
            (row.Wire.lag_sent >= row.Wire.lag_acked);
          Alcotest.(check bool) "identifies the follower" true
            (Util.contains row.Wire.lag_follower "follower")
        | rows -> Alcotest.failf "expected one lag row, got %d" (List.length rows));
        (* the same watermarks drive the obs gauges *)
        Alcotest.(check (float 0.0)) "replica.seq gauge" (float_of_int seq)
          (Metrics.value (Metrics.gauge "replica.seq"));
        Alcotest.(check (float 0.0)) "replica.lag gauge" 0.0
          (Metrics.value (Metrics.gauge "replica.lag_entries"));
        Alcotest.(check (float 0.0)) "replica.followers gauge" 1.0
          (Metrics.value (Metrics.gauge "replica.followers")));
  ]

let compaction =
  [
    Alcotest.test_case "a late follower resyncs from a fresh snapshot" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun root ->
        Unix.mkdir root 0o755;
        let pdir = Filename.concat root "p"
        and fdir = Filename.concat root "f" in
        let psock = Filename.concat root "p.sock"
        and fsock = Filename.concat root "f.sock" in
        let p =
          Server.start ~seed ~db:pdir ~socket:psock Standard_schemas.odyssey
        in
        let resyncs () =
          Metrics.count (Metrics.counter "journal.snapshot_resyncs")
        in
        let r0 = resyncs () in
        (* write and compact before the follower first connects: its
           catch-up point predates the snapshot base, forcing the
           snapshot path *)
        Client.with_client ~user:"w" ~socket:psock (fun cp ->
            ignore (Test_server.perf_run cp (Eda.Circuits.c17 ()) "c17");
            Client.compact cp);
        let fl =
          Server.start ~follow:psock ~db:fdir ~socket:fsock
            Standard_schemas.odyssey
        in
        Fun.protect
          ~finally:(fun () ->
            (try Server.stop fl; Server.wait fl with _ -> ());
            (try Server.stop p; Server.wait p with _ -> ()))
          (fun () ->
            Client.with_client ~socket:psock @@ fun cp ->
            Client.with_client ~socket:fsock @@ fun cf ->
            wait_until ~what:"snapshot resync" (caught_up cp cf);
            Alcotest.(check bool) "went through the snapshot path" true
              (resyncs () > r0);
            assert_converged ~p ~fl ~fdir));
    Alcotest.test_case "a live stream survives primary compaction" `Quick
      (fun () ->
        with_pair @@ fun ~p ~fl ~pdir:_ ~fdir ~psock ~fsock ->
        (Client.with_client ~user:"w" ~socket:psock @@ fun cp ->
         Client.with_client ~socket:fsock @@ fun cf ->
         ignore (Test_server.perf_run cp (Eda.Circuits.c17 ()) "a");
         wait_until ~what:"first catch-up" (caught_up cp cf);
         Client.compact cp;
         ignore (Test_server.perf_run cp (Eda.Circuits.full_adder ()) "b");
         wait_until ~what:"post-compaction catch-up" (caught_up cp cf));
        assert_converged ~p ~fl ~fdir);
  ]

let failover =
  [
    Alcotest.test_case "kill the primary, promote the follower" `Quick
      (fun () ->
        with_pair @@ fun ~p ~fl ~pdir:_ ~fdir ~psock ~fsock ->
        (Client.with_client ~user:"w" ~socket:psock @@ fun cp ->
         Client.with_client ~socket:fsock @@ fun cf ->
         ignore (Test_server.perf_run cp (Eda.Circuits.c17 ()) "c17");
         wait_until ~what:"catch-up before the crash" (caught_up cp cf));
        (* the primary dies; the follower takes over *)
        Server.stop p;
        Server.wait p;
        Server.promote fl;
        Client.with_client ~user:"survivor" ~socket:fsock @@ fun cf ->
        Alcotest.(check string) "promoted" "primary" (Client.stat cf).Wire.st_role;
        let seq0 = (Client.stat cf).Wire.st_seq in
        let iid =
          Client.install cf ~entity:E.stimuli ~label:"after failover"
            (Codec.value_to_sexp
               (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ])))
        in
        Alcotest.(check bool) "writes accepted and journaled" true
          ((Client.stat cf).Wire.st_seq > seq0);
        Alcotest.(check bool) "new instance visible" true
          (List.exists
             (fun r -> r.Wire.row_iid = iid)
             (Client.browse cf Test_server.no_filter));
        (* the promoted history replays like any other database *)
        Server.stop fl;
        Server.wait fl;
        Test_journal.reopened_equals fdir
          (Test_journal.state (Server.context fl)));
    Alcotest.test_case "a client rides out a daemon restart" `Quick (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t =
          Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey
        in
        let c = Client.connect ~user:"patient" ~retries:6 ~socket () in
        Client.ping c;
        let before = (Client.stat c).Wire.st_instances in
        Server.stop t;
        Server.wait t;
        (* restart behind the client's back, after a beat *)
        let restarted = ref None in
        let restarter =
          Thread.create
            (fun () ->
              Thread.delay 0.2;
              restarted :=
                Some (Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey))
            ()
        in
        Fun.protect
          ~finally:(fun () ->
            Thread.join restarter;
            match !restarted with
            | Some t2 -> (try Server.stop t2; Server.wait t2 with _ -> ())
            | None -> ())
          (fun () ->
            (* same connection object: redials with backoff and answers *)
            let after = (Client.stat c).Wire.st_instances in
            Alcotest.(check int) "same database" before after;
            Client.close c));
    Alcotest.test_case "a pool splits reads and fails over writes" `Quick
      (fun () ->
        with_pair @@ fun ~p ~fl ~pdir:_ ~fdir:_ ~psock ~fsock ->
        let pool = Client.Pool.connect ~user:"pooled" [ psock; fsock ] in
        Fun.protect ~finally:(fun () -> Client.Pool.close pool)
          (fun () ->
            Alcotest.(check (list (pair string string))) "classified"
              [ (psock, "primary"); (fsock, "follower") ]
              (Client.Pool.endpoints pool);
            (* reads land on the follower, writes on the primary *)
            Alcotest.(check string) "read from the follower" "follower"
              (Client.Pool.read pool (fun c -> (Client.stat c).Wire.st_role));
            let iid =
              Client.Pool.write pool (fun c ->
                  Client.install c ~entity:E.stimuli ~label:"pooled"
                    (Codec.value_to_sexp
                       (Value.Stimuli (Eda.Stimuli.exhaustive [ "a" ]))))
            in
            (Client.with_client ~socket:psock @@ fun cp ->
             Client.with_client ~socket:fsock @@ fun cf ->
             wait_until ~what:"pooled write to replicate" (caught_up cp cf));
            Alcotest.(check bool) "write replicated to the read side" true
              (Client.Pool.read pool (fun c ->
                   List.exists
                     (fun r -> r.Wire.row_iid = iid)
                     (Client.browse c Test_server.no_filter)));
            (* primary dies; operator promotes; the pool re-probes and
               adopts the survivor for writes *)
            Server.stop p;
            Server.wait p;
            Server.promote fl;
            let iid2 =
              Client.Pool.write pool (fun c ->
                  Client.install c ~entity:E.stimuli ~label:"after failover"
                    (Codec.value_to_sexp
                       (Value.Stimuli (Eda.Stimuli.exhaustive [ "b" ]))))
            in
            Alcotest.(check bool) "post-failover write landed" true
              (Client.Pool.read pool (fun c ->
                   List.exists
                     (fun r -> r.Wire.row_iid = iid2)
                     (Client.browse c Test_server.no_filter)))));
  ]

let versioning =
  [
    Alcotest.test_case "a protocol version mismatch is refused, typed" `Quick
      (fun () ->
        Test_journal.with_dir @@ fun dir ->
        let socket = Filename.concat dir "s.sock" in
        let t = Server.start ~seed ~db:dir ~socket Standard_schemas.odyssey in
        Fun.protect
          ~finally:(fun () -> Server.stop t; Server.wait t)
          (fun () ->
            (match Client.connect ~version:1 ~socket () with
            | c ->
              Client.close c;
              Alcotest.fail "expected a version refusal"
            | exception Client.Client_error e ->
              Alcotest.(check bool) "typed mismatch error" true
                (Util.contains (Error.message e) "protocol version mismatch"
                && Util.contains (Error.message e) "v1"));
            (* current version still welcome on the same daemon *)
            Client.with_client ~socket Client.ping));
    Alcotest.test_case "a bare hello decodes as protocol version 1" `Quick
      (fun () ->
        match Wire.request_of_sexp (Sexp.of_string "(hello jbb)") with
        | Wire.Hello { user; version } ->
          Alcotest.(check string) "user" "jbb" user;
          Alcotest.(check int) "legacy version" 1 version
        | _ -> Alcotest.fail "expected Hello");
  ]

let suite =
  [
    ("replica.convergence", convergence);
    ("replica.compaction", compaction);
    ("replica.failover", failover);
    ("replica.versioning", versioning);
  ]
