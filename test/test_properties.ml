(* Cross-cutting property tests: algebraic laws the subsystems must
   satisfy, checked over random inputs. *)

open Ddf

let netlist_gen =
  QCheck2.Gen.map
    (fun (seed, (n_inputs, n_gates)) ->
      Eda.Circuits.random ~n_inputs ~n_gates (Eda.Rng.create seed))
    QCheck2.Gen.(pair (int_bound 1_000_000) (pair (int_range 2 5) (int_range 1 30)))

(* ------------------------------------------------------------------ *)
(* History laws over random edit histories                             *)
(* ------------------------------------------------------------------ *)

let edit_tree seed depth =
  let w = Workspace.create () in
  let ctx = Workspace.ctx w in
  let rng = Eda.Rng.create seed in
  let v0 =
    Workspace.install_netlist w
      (Eda.Circuits.random ~n_inputs:3 ~n_gates:6 (Eda.Rng.create (seed + 1)))
  in
  let versions = ref [ v0 ] in
  for i = 1 to depth do
    let base = Eda.Rng.pick rng !versions in
    let session =
      Workspace.install_editor_session w
        (Eda.Edit_script.create
           ~name:(Printf.sprintf "e%d" i)
           [ Eda.Edit_script.Rename (Printf.sprintf "v%d" i) ])
    in
    let g, out = Task_graph.create (Workspace.schema w) Standard_schemas.E.edited_netlist in
    let g, fresh = Task_graph.expand g out in
    let editor, src = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
    let run = Engine.execute ctx g ~bindings:[ (editor, session); (src, base) ] in
    versions := Engine.result_of run out :: !versions
  done;
  (w, ctx, v0, !versions)

let history_gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 12))

let history_laws =
  [
    Util.qcheck ~count:30 "backward/forward duality" history_gen
      (fun (seed, depth) ->
        let w, _, v0, versions = edit_tree seed depth in
        let h = Workspace.history w in
        (* every instance derived from v0 must have v0 among its
           ancestors, and vice versa *)
        List.for_all
          (fun v ->
            v = v0
            || (List.mem v (History.derived_instances h v0)
               && List.mem v0 (History.ancestor_instances h v)))
          versions);
    Util.qcheck ~count:30 "version tree spans every version" history_gen
      (fun (seed, depth) ->
        let w, _, v0, versions = edit_tree seed depth in
        let h = Workspace.history w and st = Workspace.store w in
        let schema = Workspace.schema w in
        let tree_members = History.versions h st schema v0 in
        List.for_all (fun v -> List.mem v tree_members) versions
        && List.length tree_members = List.length versions);
    Util.qcheck ~count:30 "version parents are older" history_gen
      (fun (seed, depth) ->
        let w, _, _, versions = edit_tree seed depth in
        let h = Workspace.history w and st = Workspace.store w in
        let schema = Workspace.schema w in
        List.for_all
          (fun v ->
            match History.version_parent h st schema v with
            | None -> true
            | Some p ->
              (Store.meta_of st p).Store.created_at
              <= (Store.meta_of st v).Store.created_at)
          versions);
    Util.qcheck ~count:20 "traces of every version validate" history_gen
      (fun (seed, depth) ->
        let w, _, _, versions = edit_tree seed depth in
        let h = Workspace.history w and st = Workspace.store w in
        let schema = Workspace.schema w in
        List.for_all
          (fun v ->
            let g, root, binding = History.trace h st schema v in
            Task_graph.validate g;
            List.assoc root binding = v)
          versions);
  ]

(* ------------------------------------------------------------------ *)
(* LVS under mutation: no false positives                              *)
(* ------------------------------------------------------------------ *)

let lvs_mutation =
  [
    Util.qcheck ~count:40 "a mutated netlist never passes LVS" netlist_gen
      (fun nl ->
        let rng = Eda.Rng.create (Hashtbl.hash (Eda.Netlist.hash nl)) in
        let gates = nl.Eda.Netlist.gates in
        match gates with
        | [] -> true
        | _ ->
          let victim = Eda.Rng.pick rng gates in
          (* flip the operator to a different one of the same arity *)
          let arity = List.length victim.Eda.Netlist.inputs in
          let candidates =
            List.filter
              (fun op ->
                op <> victim.Eda.Netlist.op && Eda.Logic.arity_ok op arity)
              Eda.Logic.all_ops
          in
          let mutated_op = Eda.Rng.pick rng candidates in
          let mutated =
            { nl with
              Eda.Netlist.gates =
                List.map
                  (fun (g : Eda.Netlist.gate) ->
                    if g.Eda.Netlist.gname = victim.Eda.Netlist.gname then
                      { g with Eda.Netlist.op = mutated_op }
                    else g)
                  gates }
          in
          not (Eda.Lvs.compare_netlists nl mutated).Eda.Lvs.equivalent);
    Util.qcheck ~count:40 "LVS is reflexive on random netlists" netlist_gen
      (fun nl -> (Eda.Lvs.compare_netlists nl nl).Eda.Lvs.equivalent);
    Util.qcheck ~count:30 "LVS is symmetric through extraction" netlist_gen
      (fun nl ->
        let extracted, _ = Eda.Extract.run (Eda.Layout.place nl) in
        (Eda.Lvs.compare_netlists nl extracted).Eda.Lvs.equivalent
        = (Eda.Lvs.compare_netlists extracted nl).Eda.Lvs.equivalent);
  ]

(* ------------------------------------------------------------------ *)
(* Freedom counting vs brute force                                     *)
(* ------------------------------------------------------------------ *)

(* Enumerate legal orderings explicitly over the invocation DAG. *)
let brute_force_orderings g =
  let invocations = Array.of_list (Task_graph.invocations g) in
  let n = Array.length invocations in
  let producer = Hashtbl.create 16 in
  Array.iteri
    (fun i (inv : Task_graph.invocation) ->
      List.iter (fun o -> Hashtbl.replace producer o i) inv.Task_graph.outputs)
    invocations;
  let deps i =
    let inv = invocations.(i) in
    ((match inv.Task_graph.tool with Some t -> [ t ] | None -> [])
    @ List.map snd inv.Task_graph.inputs)
    |> List.filter_map (Hashtbl.find_opt producer)
  in
  let rec count scheduled =
    if List.length scheduled = n then 1
    else
      List.fold_left
        (fun acc i ->
          if
            (not (List.mem i scheduled))
            && List.for_all (fun d -> List.mem d scheduled) (deps i)
          then acc + count (i :: scheduled)
          else acc)
        0
        (List.init n Fun.id)
  in
  count []

let freedom_checks =
  let flow_gen =
    QCheck2.Gen.map
      (fun (seed, steps) -> Flow_gen.random_flow seed steps)
      QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 10))
  in
  [
    Util.qcheck ~count:25 "linear-extension count matches brute force"
      flow_gen
      (fun g ->
        List.length (Task_graph.invocations g) > 6
        || Baselines.Freedom.legal_orderings g = brute_force_orderings g);
  ]

(* ------------------------------------------------------------------ *)
(* BLIF round trips on random circuits                                 *)
(* ------------------------------------------------------------------ *)

let blif_props =
  [
    Util.qcheck ~count:40 "BLIF round-trips random circuits" netlist_gen
      (fun nl ->
        let nl2 = Eda.Blif.of_string (Eda.Blif.to_string nl) in
        (Eda.Lvs.compare_netlists nl nl2).Eda.Lvs.equivalent);
    Util.qcheck ~count:40 "value codecs round-trip random netlists" netlist_gen
      (fun nl ->
        let v = Value.Netlist nl in
        let v2 =
          Ddf_persist.Codec.value_of_sexp (Ddf_persist.Codec.value_to_sexp v)
        in
        Value.hash v = Value.hash v2);
  ]

(* ------------------------------------------------------------------ *)
(* Typed errors survive the wire                                       *)
(* ------------------------------------------------------------------ *)

(* The whole taxonomy — code, message, context pairs, retryability and
   the backoff hint — must round-trip through a v4 error frame exactly:
   a client's retry decision is only as good as what the frame
   preserves. *)
let error_gen =
  let open QCheck2.Gen in
  let text = string_size ~gen:printable (int_range 0 30) in
  map
    (fun (code, (msg, (ctx, (retryable, after)))) ->
      Error.make ~context:ctx ~retryable
        ?retry_after:
          (Option.map (fun n -> float_of_int n /. 1024.0) after)
        code msg)
    (pair (oneofl Error.all_codes)
       (pair text
          (pair
             (small_list (pair text text))
             (pair bool (option (int_range 0 100_000))))))

let wire_error_props =
  [
    Util.qcheck ~count:200 "error frames round-trip the taxonomy" error_gen
      (fun e ->
        let s =
          Sexp.of_string (Sexp.to_string (Wire.response_to_sexp (Wire.Error e)))
        in
        match Wire.response_of_sexp s with
        | Wire.Error e' -> e = e'
        | _ -> false);
    Util.qcheck ~count:50 "codes round-trip their names"
      QCheck2.Gen.(oneofl Error.all_codes)
      (fun c -> Error.code_of_string (Error.code_to_string c) = Some c);
    Alcotest.test_case "a bare v3 error frame decodes as final" `Quick
      (fun () ->
        match Wire.response_of_sexp (Sexp.of_string "(error \"boom\")") with
        | Wire.Error e ->
          Alcotest.(check string) "internal" "internal"
            (Error.code_to_string e.Error.code);
          Alcotest.(check string) "message" "boom" (Error.message e);
          Alcotest.(check bool) "final" false e.Error.retryable
        | _ -> Alcotest.fail "expected an error response");
  ]

(* ------------------------------------------------------------------ *)
(* Journal replay is the identity on generated contexts               *)
(* ------------------------------------------------------------------ *)

let journal_props =
  let gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 6)) in
  let journal_pair_gen =
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 8))
  in
  [
    Util.qcheck ~count:12 "journal round-trips generated contexts" gen
      (fun (seed, depth) ->
        Test_journal.with_dir @@ fun dir ->
        let j = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx = Journal.context j in
        ignore (Test_journal.activity ~seed ctx depth);
        Store.annotate ctx.Engine.store
          (1 + (seed mod Store.instance_count ctx.Engine.store))
          ~label:(Printf.sprintf "a%d" seed)
          ~keywords:[ "generated" ] ();
        let before = Test_journal.state ctx in
        Journal.close j;
        let j2 = Journal.open_ ~dir Standard_schemas.odyssey in
        let after = Test_journal.state (Journal.context j2) in
        Journal.close j2;
        before = after);
    (* The replication loop as the follower driver runs it — pull the
       tail, apply frames, resync from a snapshot when compaction has
       discarded the needed suffix — converges to the primary's exact
       durable state under random interleavings of writes, primary
       compactions and catch-up rounds. *)
    Util.qcheck ~count:10 "replica_converges" journal_pair_gen
      (fun (seed, steps) ->
        Test_journal.with_dir @@ fun root ->
        Unix.mkdir root 0o755;
        let pdir = Filename.concat root "p"
        and fdir = Filename.concat root "f" in
        let p = Journal.open_ ~dir:pdir Standard_schemas.odyssey in
        let f = Journal.open_ ~dir:fdir Standard_schemas.odyssey in
        let rec sync () =
          match Journal.entries_since p (Journal.seq f) with
          | Journal.Snapshot_needed ->
            let seq, data = Journal.snapshot_state p in
            Journal.reset_to_snapshot f ~seq data;
            sync ()
          | Journal.Frames [] -> ()
          | Journal.Frames frames ->
            List.iter (fun (seq, payload) -> Journal.apply f ~seq payload)
              frames;
            sync ()
        in
        let rng = Eda.Rng.create seed in
        List.iter
          (fun i ->
            ignore
              (Test_journal.activity ~seed:(seed + i) (Journal.context p) 1);
            match Eda.Rng.int rng 3 with
            | 0 -> Journal.compact p
            | 1 -> sync ()
            | _ -> ())
          (List.init steps (fun i -> i));
        sync ();
        let want = Test_journal.state (Journal.context p) in
        let got = Test_journal.state (Journal.context f) in
        Journal.close p;
        Journal.close f;
        (* and the follower's own journal replays to the same state *)
        let f2 = Journal.open_ ~dir:fdir Standard_schemas.odyssey in
        let replayed = Test_journal.state (Journal.context f2) in
        Journal.close f2;
        want = got && want = replayed);
    (* Group commit's contract: every write acknowledged by [sync]
       survives a crash that loses any suffix of the wal written after
       the durability point, and cutting exactly at the point replays
       to exactly the acked state. *)
    Util.qcheck ~count:10 "group_commit_replay_equiv" journal_pair_gen
      (fun (seed, steps) ->
        Test_journal.with_dir @@ fun dir ->
        let wal = Filename.concat dir "wal.ddf" in
        let j =
          Journal.open_ ~sync_mode:Journal.Group ~dir Standard_schemas.odyssey
        in
        let ctx = Journal.context j in
        let rng = Eda.Rng.create seed in
        ignore (Test_journal.activity ~seed ctx (1 + (steps mod 4)));
        Journal.sync j;
        let acked_state = Test_journal.state ctx in
        let acked_tick = Store.tick ctx.Engine.store in
        let acked =
          List.map
            (fun iid ->
              ( iid,
                Store.entity_of ctx.Engine.store iid,
                Store.hash_of ctx.Engine.store iid ))
            (Store.all_instances ctx.Engine.store)
        in
        let synced = (Unix.stat wal).Unix.st_size in
        (* unacked tail, then "crash": lose a random suffix of the wal
           at or after the last durability point *)
        ignore (Test_journal.activity ~seed:(seed + 1) ctx (1 + (steps mod 3)));
        Journal.close j;
        let full = (Unix.stat wal).Unix.st_size in
        Unix.truncate wal (synced + Eda.Rng.int rng (full - synced + 1));
        let j2 = Journal.open_ ~dir Standard_schemas.odyssey in
        let ctx2 = Journal.context j2 in
        let prefix_ok =
          Store.tick ctx2.Engine.store >= acked_tick
          && List.for_all
               (fun (iid, e, h) ->
                 Store.mem ctx2.Engine.store iid
                 && Store.entity_of ctx2.Engine.store iid = e
                 && Store.hash_of ctx2.Engine.store iid = h)
               acked
        in
        Journal.close j2;
        Unix.truncate wal synced;
        let j3 = Journal.open_ ~dir Standard_schemas.odyssey in
        let exact = Test_journal.state (Journal.context j3) = acked_state in
        Journal.close j3;
        prefix_ok && exact);
  ]

(* ------------------------------------------------------------------ *)
(* The memoized subtype closure agrees with the bare parent walk       *)
(* ------------------------------------------------------------------ *)

let schema_index_props =
  (* a random parent forest: entity ei (i > 0) may pick any earlier
     entity as its parent, so chains, bushes and isolated roots all
     occur *)
  let forest_gen = QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 14)) in
  let build seed n =
    let rng = Eda.Rng.create seed in
    let id i = Printf.sprintf "e%d" i in
    let ents =
      List.init n (fun i ->
          if i = 0 || Eda.Rng.int rng 3 = 0 then Schema.entity (id i) []
          else Schema.entity ~parent:(id (Eda.Rng.int rng i)) (id i) [])
    in
    (Schema.create "forest" ents, List.init n id)
  in
  (* the unindexed reference: walk parent links, no closure tables *)
  let rec plain s ~sub ~super =
    sub = super
    ||
    match Schema.parent_of s sub with
    | None -> false
    | Some p -> plain s ~sub:p ~super
  in
  let agree s ids =
    List.for_all
      (fun sub ->
        List.for_all
          (fun super ->
            Schema.is_subtype s ~sub ~super = plain s ~sub ~super)
          ids)
      ids
  in
  [
    Util.qcheck ~count:60 "is_subtype agrees with the parent walk" forest_gen
      (fun (seed, n) ->
        let s, ids = build seed n in
        agree s ids);
    Util.qcheck ~count:40 "closure survives schema extension" forest_gen
      (fun (seed, n) ->
        let s, ids = build seed n in
        (* query first so the closure tables exist, then extend: the
           extended schema must answer from fresh tables, not the old
           cache *)
        let _ = agree s ids in
        let parent = Printf.sprintf "e%d" (seed mod n) in
        let s' = Schema.add_entity s (Schema.entity ~parent "fresh" []) in
        agree s' ("fresh" :: ids)
        && Schema.is_subtype s' ~sub:"fresh" ~super:parent
        && agree s ids);
  ]

let suite =
  [
    ("properties.history", history_laws);
    ("properties.lvs", lvs_mutation);
    ("properties.freedom", freedom_checks);
    ("properties.blif", blif_props);
    ("properties.wire_errors", wire_error_props);
    ("properties.journal", journal_props);
    ("properties.schema_index", schema_index_props);
  ]
