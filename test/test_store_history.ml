(* Tests for the design-object store and the design-history database,
   including the chaining queries of Fig. 10 and the versioning of
   Fig. 11. *)

open Ddf
module E = Standard_schemas.E

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* A small scenario shared by the history tests: a netlist is edited
   twice (two versions), placed, extracted, and simulated. *)
type scenario = {
  w : Workspace.t;
  s_netlist : Store.iid;        (* v1 *)
  s_v2 : Store.iid;
  s_v3 : Store.iid;             (* child of v2 *)
  s_v3b : Store.iid;            (* second child of v2: a branch *)
  s_layout : Store.iid;         (* placed from v2 *)
  s_extracted : Store.iid;
}

let scenario () =
  let w = Workspace.create ~user:"hist" () in
  let ctx = Workspace.ctx w in
  let nl = Eda.Circuits.full_adder () in
  let v1 = Workspace.install_netlist w ~label:"fa v1" nl in
  let edit label net iid =
    let session =
      Workspace.install_editor_session w ~label
        (Eda.Edit_script.create ~name:label
           [ Eda.Edit_script.Insert_buffer { net; gname = "b_" ^ label } ])
    in
    let g, out = Task_graph.create (Workspace.schema w) E.edited_netlist in
    let g, fresh = Task_graph.expand g out in
    let editor, source = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
    let run =
      Engine.execute ctx g ~bindings:[ (editor, session); (source, iid) ]
    in
    Engine.result_of run out
  in
  let v2 = edit "e1" "x1" v1 in
  let v3 = edit "e2" "a1" v2 in
  let v3b = edit "e3" "a2" v2 in
  (* place v2 and extract *)
  let g, layout_node = Task_graph.create (Workspace.schema w) E.synthesized_layout in
  let g, fresh = Task_graph.expand ~include_optional:false g layout_node in
  let placer, nl_node = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run =
    Engine.execute ctx g
      ~bindings:[ (placer, Workspace.tool w E.placer); (nl_node, v2) ]
  in
  let layout = Engine.result_of run layout_node in
  let g, ext = Task_graph.create (Workspace.schema w) E.extracted_netlist in
  let g, fresh = Task_graph.expand g ext in
  let extractor, lay_node = match fresh with [ a; b ] -> (a, b) | _ -> assert false in
  let run =
    Engine.execute ctx g
      ~bindings:[ (extractor, Workspace.tool w E.extractor); (lay_node, layout) ]
  in
  {
    w;
    s_netlist = v1;
    s_v2 = v2;
    s_v3 = v3;
    s_v3b = v3b;
    s_layout = layout;
    s_extracted = Engine.result_of run ext;
  }

let store_tests =
  [
    t "instances share physical data by content" (fun () ->
        let store = Store.create () in
        let meta = Store.meta ~created_at:1 () in
        let a = Store.put store ~entity:"x" ~hash:"h1" ~meta "payload" in
        let b = Store.put store ~entity:"x" ~hash:"h1" ~meta "payload" in
        let c = Store.put store ~entity:"x" ~hash:"h2" ~meta "other" in
        check Alcotest.int "instances" 3 (Store.instance_count store);
        check Alcotest.int "payloads" 2 (Store.physical_count store);
        check Alcotest.bool "distinct iids" true (a <> b && b <> c));
    t "annotate updates metadata" (fun () ->
        let store = Store.create () in
        let meta = Store.meta ~created_at:1 () in
        let iid = Store.put store ~entity:"x" ~hash:"h" ~meta "p" in
        Store.annotate store iid ~label:"low pass filter"
          ~comment:"for the dac paper" ();
        let m = Store.meta_of store iid in
        check Alcotest.string "label" "low pass filter" m.Store.label;
        check Alcotest.string "comment" "for the dac paper" m.Store.comment);
    Util.expect_exn "missing instance"
      (function Ddf.Error.Ddf_error _ -> true | _ -> false)
      (fun () -> Store.find (Store.create ()) 42);
    t "browse by user, date window, keyword and text" (fun () ->
        let store = Store.create () in
        let put user at label keywords =
          Store.put store ~entity:"netlist" ~hash:(label ^ user)
            ~meta:(Store.meta ~user ~label ~keywords ~created_at:at ())
            "p"
        in
        let a = put "jbb" 2 "Low pass filter" [ "analog" ] in
        let b = put "director" 5 "CMOS Full adder" [ "cmos" ] in
        let c = put "sutton" 9 "Operational Amplifier" [ "analog" ] in
        let ids f = Store.browse store f in
        check (Alcotest.list Alcotest.int) "user" [ a ]
          (ids { Store.any_filter with Store.f_user = Some "jbb" });
        check (Alcotest.list Alcotest.int) "window" [ b ]
          (ids { Store.any_filter with Store.f_from = Some 3; Store.f_to = Some 8 });
        check (Alcotest.list Alcotest.int) "keyword" [ a; c ]
          (ids { Store.any_filter with Store.f_keywords = [ "analog" ] });
        check (Alcotest.list Alcotest.int) "text" [ b ]
          (ids { Store.any_filter with Store.f_text = Some "full" }));
    t "instances_of_entity keeps insertion order" (fun () ->
        let store = Store.create () in
        let meta = Store.meta ~created_at:1 () in
        let a = Store.put store ~entity:"x" ~hash:"1" ~meta "p" in
        let b = Store.put store ~entity:"x" ~hash:"2" ~meta "q" in
        check (Alcotest.list Alcotest.int) "order" [ a; b ]
          (Store.instances_of_entity store "x"));
  ]

let history_tests =
  [
    t "backward chaining finds the whole derivation" (fun () ->
        let s = scenario () in
        let records = History.backward_closure (Workspace.history s.w) s.s_extracted in
        (* extraction <- placement <- edit e1 *)
        check Alcotest.int "three records" 3 (List.length records));
    t "forward chaining finds all derived data" (fun () ->
        let s = scenario () in
        let derived = History.derived_instances (Workspace.history s.w) s.s_netlist in
        (* v2, v3, v3b, layout, extracted (+statistics) *)
        check Alcotest.bool "v3 derived" true (List.mem s.s_v3 derived);
        check Alcotest.bool "extracted derived" true
          (List.mem s.s_extracted derived);
        check Alcotest.bool "at least 5" true (List.length derived >= 5));
    t "trace reconstructs a valid task graph" (fun () ->
        let s = scenario () in
        let g, root, binding =
          History.trace (Workspace.history s.w) (Workspace.store s.w)
            (Workspace.schema s.w) s.s_extracted
        in
        Task_graph.validate g;
        check Alcotest.bool "root bound" true
          (List.assoc root binding = s.s_extracted);
        check Alcotest.string "root entity" E.extracted_netlist
          (Task_graph.entity_of g root));
    t "version parents follow edit inputs" (fun () ->
        let s = scenario () in
        let h = Workspace.history s.w and st = Workspace.store s.w in
        let schema = Workspace.schema s.w in
        check (Alcotest.option Alcotest.int) "v2 <- v1" (Some s.s_netlist)
          (History.version_parent h st schema s.s_v2);
        check (Alcotest.option Alcotest.int) "v1 is an origin" None
          (History.version_parent h st schema s.s_netlist));
    t "version tree has the Fig. 11 shape" (fun () ->
        let s = scenario () in
        let h = Workspace.history s.w and st = Workspace.store s.w in
        let schema = Workspace.schema s.w in
        let tree = History.version_tree h st schema s.s_netlist in
        check Alcotest.int "four versions" 4 (History.version_tree_size tree);
        (* v2 has two children: the branch *)
        let rec find t = if t.History.v_iid = s.s_v2 then Some t
          else List.fold_left (fun acc c -> match acc with Some _ -> acc | None -> find c) None t.History.v_children
        in
        match find tree with
        | Some v2 -> check Alcotest.int "branching" 2 (List.length v2.History.v_children)
        | None -> Alcotest.fail "v2 not in tree");
    t "versions from any member reach the whole tree" (fun () ->
        let s = scenario () in
        let h = Workspace.history s.w and st = Workspace.store s.w in
        let schema = Workspace.schema s.w in
        check
          Alcotest.(slist int compare)
          "same set"
          (History.versions h st schema s.s_netlist)
          (History.versions h st schema s.s_v3b));
    t "out_of_date is empty for fresh data" (fun () ->
        let s = scenario () in
        check Alcotest.bool "fresh" true
          (History.is_up_to_date (Workspace.history s.w) (Workspace.store s.w)
             (Workspace.schema s.w) s.s_extracted));
    t "an edit makes downstream data stale" (fun () ->
        let s = scenario () in
        let ctx = Workspace.ctx s.w in
        (* new version of the layout *)
        let session =
          Workspace.install_layout_editor_session s.w
            [ Eda.Layout.Rename_layout "moved" ]
        in
        let g, out = Task_graph.create (Workspace.schema s.w) E.edited_layout in
        let g, fresh = Task_graph.expand ~include_optional:false g out in
        let editor = match fresh with [ e ] -> e | _ -> assert false in
        let g, lay = Task_graph.add_node g E.layout in
        let g = Task_graph.connect g ~user:out ~role:E.layout ~dep:lay in
        let _ =
          Engine.execute ctx g
            ~bindings:[ (editor, session); (lay, s.s_layout) ]
        in
        let stale =
          History.out_of_date (Workspace.history s.w) (Workspace.store s.w)
            (Workspace.schema s.w) s.s_extracted
        in
        check Alcotest.int "one stale input" 1 (List.length stale));
    t "query by template: simulations of this netlist" (fun () ->
        let s = scenario () in
        (* template: extracted_netlist <- (extractor, layout), layout bound *)
        let schema = Workspace.schema s.w in
        let g, ext = Task_graph.create schema E.extracted_netlist in
        let g, _ = Task_graph.expand g ext in
        let lay =
          match
            List.find_opt
              (fun (n : Task_graph.node) -> n.Task_graph.entity = E.layout)
              (Task_graph.nodes g)
          with
          | Some n -> n.Task_graph.nid
          | None -> Alcotest.fail "no layout node"
        in
        let results =
          History.query_template (Workspace.history s.w) (Workspace.store s.w) g
            ~bound:[ (lay, s.s_layout) ]
        in
        check Alcotest.int "one extraction" 1 (List.length results);
        let binding = List.hd results in
        check Alcotest.int "finds the netlist" s.s_extracted
          (List.assoc ext binding));
    t "template with an unmatched binding returns nothing" (fun () ->
        let s = scenario () in
        let schema = Workspace.schema s.w in
        let g, ext = Task_graph.create schema E.extracted_netlist in
        let g, _ = Task_graph.expand g ext in
        let lay =
          match
            List.find_opt
              (fun (n : Task_graph.node) -> n.Task_graph.entity = E.layout)
              (Task_graph.nodes g)
          with
          | Some n -> n.Task_graph.nid
          | None -> Alcotest.fail "no layout node"
        in
        (* bind the layout role to a netlist-unrelated instance *)
        let results =
          History.query_template (Workspace.history s.w) (Workspace.store s.w) g
            ~bound:[ (lay, s.s_extracted) ]
        in
        check Alcotest.int "none" 0 (List.length results));
    Util.expect_exn "double-producing an instance is rejected"
      (function Ddf.Error.Ddf_error _ -> true | _ -> false)
      (fun () ->
        let h = History.create () in
        let _ = History.add h ~task_entity:"x" ~tool:None ~inputs:[]
                  ~outputs:[ ("x", 1) ] ~at:1 in
        History.add h ~task_entity:"x" ~tool:None ~inputs:[]
          ~outputs:[ ("x", 1) ] ~at:2);
  ]

let suite =
  [ ("store", store_tests); ("history", history_tests) ]
