let () =
  Alcotest.run "ddf"
    (Test_schema.suite @ Test_graph.suite @ Test_representations.suite
    @ Test_eda_netlist.suite @ Test_eda_sim.suite @ Test_eda_physical.suite
    @ Test_store_history.suite @ Test_exec.suite @ Test_session.suite
    @ Test_baselines.suite @ Test_persist.suite @ Test_integration.suite
    @ Test_hier_process.suite @ Test_properties.suite @ Test_misc.suite
    @ Test_obs.suite @ Test_journal.suite @ Test_server.suite
    @ Test_replica.suite @ Test_cement.suite @ Test_fault.suite
    @ Test_telemetry.suite @ Test_sync.suite @ Test_wire.suite
    @ Test_mvcc.suite)
